//! `bench-report` — tracked per-stage pipeline timings.
//!
//! Times the figures-corpus pipeline stage by stage (analysis,
//! assignment, scheduling) and end to end, comparing the *vendored seed
//! implementation* ([`clasp_bench::seed`]: map-backed assignment state
//! cloned per tentative, HashMap-grid reservation table, per-II and
//! per-call recompute of every analysis, O(n) ready scan, looser II cap)
//! against the amortized `LoopAnalysis`/`SchedContext` path, then writes
//! the numbers to `BENCH_sched.json` at the repo root so the perf
//! trajectory is tracked in-tree.
//!
//! Both sides must agree exactly — the report asserts equal IIs across
//! the corpus for the unified sweep, the assignment phase, and the full
//! pipeline before it prints a single number.
//!
//! On top of the amortized stages, the report times the deterministic
//! parallel executor (`clasp-exec`) over the corpus and the fuzz stream
//! — asserting the parallel results bit-identical to serial first — the
//! content-addressed compile cache (cold corpus compile vs a warmed
//! replay, both through the `CompileService` facade), and the
//! `clasp-serve` wire path (cold corpus over TCP against a fresh daemon
//! vs warm-hit round-trips against a pre-warmed one), recording the
//! worker count and cache hit/miss counters in `BENCH_sched.json`.
//!
//! A final `load` stage runs the `clasp-load` traffic harness over the
//! full (transport × clients × mix) matrix and writes the latency
//! percentiles to `BENCH_load.json`, gating on zero load errors, zero
//! fd growth, and each cell's p99 staying within a loose factor of the
//! committed baseline.
//!
//! Run with `cargo run --release -p clasp-bench --bin bench-report`.

use clasp::obs::Obs;
use clasp::serve::{Client, Server};
use clasp::{
    compare_with_unified, compile_full, compile_full_observed, compile_loop, CompileRequest,
    CompileService, PipelineConfig, ServiceRequest,
};
use clasp_bench::{bench, fmt_ns, json_escape, seed, Timing};
use clasp_core::{assign_from, assign_with_analysis, Assignment};
use clasp_ddg::{Ddg, LoopAnalysis};
use clasp_kernel::{emit_program_with, RegisterModel};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::{presets, MachineSpec};
use clasp_sched::{max_ii_bound, unified_map, SchedContext, SchedulerConfig};
use std::path::PathBuf;

/// Figures-corpus slice: the paper's corpus shape (301/1327 recurrence
/// fraction) at a size the report can time in seconds, not minutes.
const LOOPS: usize = 150;
const SAMPLES: u32 = 5;

fn corpus() -> Vec<Ddg> {
    generate_corpus(CorpusConfig {
        loops: LOOPS,
        scc_loops: (LOOPS * 301).div_ceil(1327),
        seed: 0x1998_C1A5,
    })
}

/// The seed's unified baseline: fresh scheduler (swing order, slot
/// requests, HashMap-grid reservation table) rebuilt at every II, swept
/// to the seed's `MII + total latency + node count` cap.
fn unified_ii_seed(g: &Ddg, machine: &MachineSpec, cfg: SchedulerConfig) -> Option<u32> {
    let unified = machine.unified_equivalent();
    seed::schedule_unified(g, &unified, cfg).map(|s| s.ii())
}

/// One shared context for the whole II sweep (the amortized path).
fn unified_ii_shared(g: &Ddg, machine: &MachineSpec, cfg: SchedulerConfig) -> Option<u32> {
    let unified = machine.unified_equivalent();
    let map = unified_map(g, &unified);
    let mii = unified.mii(g);
    if mii == u32::MAX {
        return None;
    }
    let cap = max_ii_bound(g, mii);
    let mut ctx = SchedContext::new(g, &unified, &map).ok()?;
    ctx.schedule_in_range(mii.max(1), cap, cfg)
        .ok()
        .map(|s| s.ii())
}

/// The seed pipeline shape: the seed assigner per escalation (re-deriving
/// SCCs and the swing order each call, cloning map-backed state per
/// tentative), the seed scheduler for the clustered phase, and the seed
/// per-II unified baseline.
fn end_to_end_seed(g: &Ddg, machine: &MachineSpec, config: PipelineConfig) -> Option<(u32, u32)> {
    let unified = unified_ii_seed(g, machine, config.sched)?;
    let (schedule, _) = clustered_seed(g, machine, config)?;
    Some((schedule.ii(), unified))
}

/// The seed's clustered compile alone (Figure-5 escalation over the seed
/// assigner and seed scheduler, from-scratch at every II), returning the
/// final schedule and its assignment.
fn clustered_seed(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Option<(clasp_sched::Schedule, Assignment)> {
    let unified_mii = machine.unified_equivalent().mii(g).max(1);
    let cap = config
        .assign
        .max_ii
        .unwrap_or_else(|| seed::max_ii_bound(g, unified_mii));
    let mut min_ii = unified_mii;
    while min_ii <= cap {
        let assignment = seed::assign_from(g, machine, config.assign, min_ii).ok()?;
        if let Some(schedule) = seed::iterative_schedule(
            &assignment.graph,
            machine,
            &assignment.map,
            assignment.ii,
            config.sched,
        ) {
            return Some((schedule, assignment));
        }
        min_ii = assignment.ii + 1;
    }
    None
}

/// The seed's *full* pipeline: the from-scratch clustered escalation
/// above, then register modelling and kernel emission — the shape
/// `compile_full` replaced, with the seed phases underneath.
fn full_pipeline_seed(
    g: &Ddg,
    machine: &MachineSpec,
    config: PipelineConfig,
) -> Option<clasp_kernel::Program> {
    let (schedule, assignment) = clustered_seed(g, machine, config)?;
    let model = RegisterModel::mve(&assignment.graph, &schedule);
    Some(emit_program_with(
        &assignment.graph,
        &assignment.map,
        &schedule,
        16,
        &model,
    ))
}

struct Stage {
    name: &'static str,
    baseline: Timing,
    amortized: Timing,
}

impl Stage {
    fn speedup_percent(&self) -> f64 {
        let b = self.baseline.median_ns as f64;
        let a = self.amortized.median_ns as f64;
        if b == 0.0 {
            return 0.0;
        }
        (1.0 - a / b) * 100.0
    }
}

fn main() {
    let corpus = corpus();
    let machine = presets::four_cluster_gp(4, 2);
    let sched_cfg = SchedulerConfig::default();
    let pipe_cfg = PipelineConfig::default();
    println!(
        "figures corpus: {} loops, machine {}, {} samples per measurement\n",
        corpus.len(),
        machine.name(),
        SAMPLES
    );

    // Sanity first: the amortized sweep must agree with the seed sweep on
    // every corpus loop (IIs equal; the seed module's own test checks
    // bit-identical start cycles).
    for g in &corpus {
        let a = unified_ii_seed(g, &machine, sched_cfg);
        let b = unified_ii_shared(g, &machine, sched_cfg);
        assert_eq!(a, b, "amortized sweep diverged from seed on {}", g.name());
    }

    // Stage 1: analysis. The seed derived SCCs, RecMII, and the swing
    // order independently at each use site; `LoopAnalysis` computes them
    // (plus the CSR adjacency and priority index) once.
    let analysis = Stage {
        name: "analysis",
        baseline: bench("analysis/seed-per-call", SAMPLES, || {
            corpus
                .iter()
                .map(|g| {
                    let sccs = clasp_ddg::find_sccs(g);
                    let _ = clasp_ddg::rec_mii_with(g, &sccs);
                    // Seed call sites re-ran SCC discovery inside the
                    // ordering and RecMII paths; two passes model the
                    // assigner's (ordering) + scheduler's (priority) uses.
                    let order = clasp_ddg::swing_order(g);
                    order.len()
                })
                .sum::<usize>()
        }),
        amortized: bench("analysis/loop-analysis", SAMPLES, || {
            corpus
                .iter()
                .map(|g| {
                    let la = LoopAnalysis::compute(g);
                    la.order().len().max(la.rec_mii() as usize)
                })
                .sum::<usize>()
        }),
    };
    println!("{}", analysis.baseline);
    println!("{}", analysis.amortized);

    // The seed assigner must agree with the current one on every corpus
    // loop before its timings mean anything.
    for g in &corpus {
        let a = seed::assign_from(g, &machine, pipe_cfg.assign, 1).ok();
        let b = assign_from(g, &machine, pipe_cfg.assign, 1).ok();
        assert_eq!(
            a.as_ref().map(|x| (x.ii, x.map.clone())),
            b.as_ref().map(|x| (x.ii, x.map.clone())),
            "seed assigner diverged from current on {}",
            g.name()
        );
    }

    // Stage 2: assignment. The baseline is the seed assigner (map-backed
    // state, per-call SCC + swing-order recompute); the amortized side is
    // the dense-state assigner reusing one precomputed `LoopAnalysis`.
    let analyses: Vec<LoopAnalysis> = corpus.iter().map(LoopAnalysis::compute).collect();
    let assignment = Stage {
        name: "assignment",
        baseline: bench("assignment/seed", SAMPLES, || {
            corpus
                .iter()
                .filter_map(|g| seed::assign_from(g, &machine, pipe_cfg.assign, 1).ok())
                .map(|a| a.ii)
                .sum::<u32>()
        }),
        amortized: bench("assignment/shared-analysis", SAMPLES, || {
            corpus
                .iter()
                .zip(&analyses)
                .filter_map(|(g, la)| {
                    assign_with_analysis(g, &machine, pipe_cfg.assign, 1, la).ok()
                })
                .map(|a| a.ii)
                .sum::<u32>()
        }),
    };
    println!("{}", assignment.baseline);
    println!("{}", assignment.amortized);

    // Stage 3: scheduling a pre-assigned working graph across its II
    // sweep: the seed scheduler (fresh everything per II, seed cap)
    // versus one reusable context (dense epoch MRT, tightened cap).
    let assigned: Vec<Assignment> = corpus
        .iter()
        .filter_map(|g| assign_from(g, &machine, pipe_cfg.assign, 1).ok())
        .collect();
    let scheduling = Stage {
        name: "scheduling",
        baseline: bench("scheduling/seed-per-ii", SAMPLES, || {
            assigned
                .iter()
                .filter_map(|a| {
                    let cap = seed::max_ii_bound(&a.graph, a.ii);
                    seed::schedule_in_range(&a.graph, &machine, &a.map, a.ii, cap, sched_cfg)
                })
                .map(|s| s.ii())
                .sum::<u32>()
        }),
        amortized: bench("scheduling/shared-context", SAMPLES, || {
            assigned
                .iter()
                .filter_map(|a| {
                    let cap = max_ii_bound(&a.graph, a.ii);
                    let mut ctx = SchedContext::new(&a.graph, &machine, &a.map).ok()?;
                    ctx.schedule_in_range(a.ii, cap, sched_cfg).ok()
                })
                .map(|s| s.ii())
                .sum::<u32>()
        }),
    };
    println!("{}", scheduling.baseline);
    println!("{}", scheduling.amortized);

    // End to end: the full figure pipeline (clustered compile + unified
    // baseline) in the seed's shape versus the amortized pipeline.
    let end_to_end = Stage {
        name: "end-to-end",
        baseline: bench("end-to-end/seed", SAMPLES, || {
            corpus
                .iter()
                .filter_map(|g| end_to_end_seed(g, &machine, pipe_cfg))
                .map(|(c, u)| c + u)
                .sum::<u32>()
        }),
        amortized: bench("end-to-end/amortized", SAMPLES, || {
            corpus
                .iter()
                .filter_map(|g| compare_with_unified(g, &machine, pipe_cfg).ok())
                .map(|(c, u)| c + u)
                .sum::<u32>()
        }),
    };
    println!("{}", end_to_end.baseline);
    println!("{}", end_to_end.amortized);

    // The figures must not change: both pipelines see the same IIs.
    let baseline_iis: Vec<_> = corpus
        .iter()
        .map(|g| end_to_end_seed(g, &machine, pipe_cfg))
        .collect();
    let amortized_iis: Vec<_> = corpus
        .iter()
        .map(|g| compare_with_unified(g, &machine, pipe_cfg).ok())
        .collect();
    assert_eq!(baseline_iis, amortized_iis, "pipeline IIs diverged");

    // Full pipeline through kernel emission: the seed phases composed
    // into the same compile-register-emit sequence versus one
    // `compile_full` call (carried assigner workspace, packed MRT,
    // arena-backed materialization underneath). Both sides must first
    // prove they emit bit-identical kernels — and the driver must match
    // the hand-composed glue — before the timings mean anything.
    let full_req = CompileRequest {
        pipeline: pipe_cfg,
        restage: false,
        iterations: 16,
        verify: false,
        ..CompileRequest::default()
    };
    for g in &corpus {
        let glue = compile_loop(g, &machine, pipe_cfg).ok().map(|c| {
            let model = RegisterModel::mve(&c.assignment.graph, &c.schedule);
            emit_program_with(
                &c.assignment.graph,
                &c.assignment.map,
                &c.schedule,
                16,
                &model,
            )
        });
        let driver = compile_full(g, &machine, &full_req).ok().map(|a| a.program);
        assert_eq!(
            glue,
            driver,
            "driver kernel diverged from glue on {}",
            g.name()
        );
        let seeded = full_pipeline_seed(g, &machine, pipe_cfg);
        assert_eq!(
            seeded,
            driver,
            "driver kernel diverged from seed pipeline on {}",
            g.name()
        );
    }
    let full_pipeline = Stage {
        name: "full-pipeline",
        baseline: bench("full-pipeline/seed", SAMPLES, || {
            corpus
                .iter()
                .filter_map(|g| full_pipeline_seed(g, &machine, pipe_cfg))
                .map(|p| p.issue_count())
                .sum::<usize>()
        }),
        amortized: bench("full-pipeline/compile-full", SAMPLES, || {
            corpus
                .iter()
                .filter_map(|g| compile_full(g, &machine, &full_req).ok())
                .map(|a| a.program.issue_count())
                .sum::<usize>()
        }),
    };
    println!("{}", full_pipeline.baseline);
    println!("{}", full_pipeline.amortized);

    // Corpus sweep on the deterministic executor: the serial corpus
    // compile versus the same compiles on `clasp_exec::sweep` with one
    // worker per hardware thread. First the bit-identity gate: the sweep
    // must return exactly the serial results for any worker count.
    let threads = clasp_exec::resolve_threads(0, corpus.len());
    let compile_ii = |g: &Ddg| compile_full(g, &machine, &full_req).ok().map(|a| a.ii());
    let serial_iis: Vec<Option<u32>> = corpus.iter().map(compile_ii).collect();
    for t in [1, threads] {
        let swept = clasp_exec::sweep(
            t,
            &corpus,
            |_, g: &Ddg| g.name().to_string(),
            |_, g| compile_ii(g),
        )
        .expect("corpus sweep must not panic");
        assert_eq!(
            serial_iis, swept,
            "sweep diverged from serial at {t} workers"
        );
    }
    let corpus_sweep = Stage {
        name: "corpus-sweep",
        baseline: bench("corpus/serial", SAMPLES, || {
            corpus.iter().filter_map(compile_ii).count()
        }),
        amortized: bench("corpus/parallel", SAMPLES, || {
            clasp_exec::sweep(
                threads,
                &corpus,
                |_, g: &Ddg| g.name().to_string(),
                |_, g| compile_ii(g),
            )
            .expect("corpus sweep must not panic")
            .into_iter()
            .flatten()
            .count()
        }),
    };
    println!("{}", corpus_sweep.baseline);
    println!("{}", corpus_sweep.amortized);

    // Content-addressed compile cache behind the service facade: the
    // cold corpus compile versus replaying it against a warmed service
    // (every request a memory hit).
    let quiet = Obs::disabled();
    let warm = CompileService::in_memory();
    for g in &corpus {
        warm.compile_artifact(g, &machine, &full_req, &quiet);
    }
    let compile_cache = Stage {
        name: "compile-cache",
        baseline: bench("cache/cold", SAMPLES, || {
            let cold = CompileService::in_memory();
            corpus
                .iter()
                .filter(|g| {
                    cold.compile_artifact(g, &machine, &full_req, &quiet)
                        .is_ok()
                })
                .count()
        }),
        amortized: bench("cache/warm", SAMPLES, || {
            corpus
                .iter()
                .filter(|g| {
                    warm.compile_artifact(g, &machine, &full_req, &quiet)
                        .is_ok()
                })
                .count()
        }),
    };
    println!("{}", compile_cache.baseline);
    println!("{}", compile_cache.amortized);
    let cache_stats = warm.stats();

    // Fuzz stage: the differential oracle (compile + all invariant
    // checks + dual-model simulation per case) over a bounded slice of
    // the seed-0 case stream, serial versus parallel case checking.
    // Asserted clean — the report doubles as a correctness gate — and
    // timed, so oracle throughput regressions show up in the tracked
    // numbers.
    const FUZZ_CASES: usize = 200;
    let run_fuzz_at = |threads: usize| {
        let cfg = clasp_oracle::FuzzConfig {
            seed: 0,
            cases: FUZZ_CASES,
            threads,
            ..clasp_oracle::FuzzConfig::default()
        };
        // A fresh service per run keeps every case a cold compile (the
        // stream never repeats a loop), so the timing still measures
        // oracle throughput while exercising the service-routed
        // pipeline the CLI's fuzz command uses.
        let service = CompileService::in_memory();
        let pipeline = |g: &Ddg, m: &MachineSpec| service.oracle_case(g, m);
        let report = clasp_oracle::run_fuzz(&cfg, &pipeline);
        assert!(
            report.is_clean(),
            "differential oracle found {} violating cases",
            report.failures.len()
        );
        report.checked
    };
    let fuzz = Stage {
        name: "fuzz",
        baseline: bench("fuzz/serial", SAMPLES, || run_fuzz_at(1)),
        amortized: bench("fuzz/parallel", SAMPLES, || run_fuzz_at(threads)),
    };
    println!("{}", fuzz.baseline);
    println!("{}", fuzz.amortized);

    // The wire path: the same corpus compiled through a `clasp-serve`
    // daemon over localhost TCP. Correctness gate first: the daemon's
    // reply bytes must equal the in-process service's for the same wire
    // text (the daemon adds transport, never new behavior), and the
    // served schedule must reach the II of the direct compile. (Full
    // artifact equality would be too strong here: the wire round-trips
    // the loop through `.clasp` text, which canonicalizes node labels
    // the loopgen corpus leaves empty.)
    let machine_text = clasp_text::write_machine(&machine);
    let wire_requests: Vec<String> = corpus
        .iter()
        .map(|g| {
            let mut sreq = ServiceRequest::new(clasp_text::write_loop(g), machine_text.clone());
            sreq.request = full_req;
            sreq.render()
        })
        .collect();
    let warm_server = Server::start(
        "127.0.0.1:0",
        std::sync::Arc::new(CompileService::in_memory()),
    )
    .expect("bind ephemeral port");
    let mut warm_client = Client::connect(warm_server.addr()).expect("connect warm daemon");
    let gate_service = CompileService::in_memory();
    for (g, wire) in corpus.iter().zip(&wire_requests) {
        let reply = warm_client.roundtrip(wire).expect("serve round-trip");
        assert_eq!(
            reply,
            gate_service.respond(wire),
            "daemon reply diverged from the in-process service on {}",
            g.name()
        );
        let served = clasp::ServiceReply::parse(&reply)
            .expect("healthy reply")
            .decode()
            .expect("artifact payload");
        let local = compile_full(g, &machine, &full_req);
        assert_eq!(
            served.as_ref().ok().map(|a| a.ii()),
            local.as_ref().ok().map(|a| a.ii()),
            "served II diverged from the direct compile on {}",
            g.name()
        );
    }
    let serve = Stage {
        name: "serve",
        baseline: bench("serve/cold", SAMPLES, || {
            // A fresh daemon per sample: every request is a true miss
            // compiled behind the wire, plus daemon start and shutdown.
            let server = Server::start(
                "127.0.0.1:0",
                std::sync::Arc::new(CompileService::in_memory()),
            )
            .expect("bind ephemeral port");
            let mut client = Client::connect(server.addr()).expect("connect cold daemon");
            let served = wire_requests
                .iter()
                .filter(|wire| client.roundtrip(wire).is_ok())
                .count();
            server.shutdown().expect("graceful shutdown");
            served
        }),
        amortized: bench("serve/warm", SAMPLES, || {
            // Steady state: every request a memory hit on the warmed
            // daemon — framing + lookup + canonical payload, no compile.
            wire_requests
                .iter()
                .filter(|wire| warm_client.roundtrip(wire).is_ok())
                .count()
        }),
    };
    println!("{}", serve.baseline);
    println!("{}", serve.amortized);
    drop(warm_client);
    warm_server.shutdown().expect("graceful warm shutdown");

    // Observability counters over the corpus: one instrumented compile
    // pass. Every counter is deterministic for a fixed corpus (see
    // `clasp-obs`), so these numbers are tracked facts about the
    // workload — how many escalation attempts, conflicts, backtracks the
    // corpus costs — not measurements subject to noise.
    let obs = Obs::enabled();
    for g in &corpus {
        let _ = compile_full_observed(g, &machine, &full_req, &obs);
    }
    // The executor and cache counters come from one instrumented pass
    // through each of those subsystems — an observed corpus sweep (one
    // `exec.items` tick per loop) and an observed cold-then-warm cache
    // replay (one miss then one hit per loop). They record into their own
    // sink so the pipeline counters above stay exactly one compile pass
    // worth of facts, then only the executor/cache totals are folded in.
    let subsystem_obs = Obs::enabled();
    clasp_exec::sweep_with_observed(
        threads,
        &corpus,
        || (),
        |_, g: &Ddg| g.name().to_string(),
        |(), _, g| compile_ii(g),
        &subsystem_obs,
    )
    .expect("observed corpus sweep must not panic");
    let observed_service = CompileService::in_memory();
    for g in &corpus {
        let _ = observed_service.compile_artifact(g, &machine, &full_req, &subsystem_obs);
        let _ = observed_service.compile_artifact(g, &machine, &full_req, &subsystem_obs);
    }
    for c in [
        clasp::obs::Counter::ExecItems,
        clasp::obs::Counter::CacheHits,
        clasp::obs::Counter::CacheMisses,
    ] {
        obs.add(c, subsystem_obs.counter(c));
    }
    let obs_counters = obs.counters();
    println!("\nobs counters over the corpus (deterministic):");
    for (name, value) in &obs_counters {
        println!("  {name} = {value}");
    }

    // Strata sweep: the {preset × stratum} II-degradation table over the
    // CGRA-style presets, through the service on the deterministic
    // executor. Determinism gate first — a cold parallel sweep and a
    // warm serial one must render byte-identical reports — then the
    // table goes to `results/strata.csv` and the `strata` block below.
    let strata_cfg = clasp::strata::SweepConfig::default();
    let strata_service = CompileService::in_memory();
    let strata = clasp::strata::run_sweep(&strata_cfg, &strata_service)
        .expect("strata sweep over default presets");
    let strata_serial = clasp::strata::run_sweep(
        &clasp::strata::SweepConfig {
            threads: 1,
            ..strata_cfg.clone()
        },
        &strata_service,
    )
    .expect("serial strata sweep");
    assert_eq!(
        strata.render_csv(),
        strata_serial.render_csv(),
        "strata sweep diverged across thread counts / cache temperature"
    );
    println!("\nstrata sweep (clustered II / unified II, per stratum):");
    for r in &strata.rows {
        println!(
            "  {:<12} {:<16} {:>3}/{:<3} compiled, degradation {}",
            r.preset,
            r.stratum.name(),
            r.compiled,
            r.loops,
            r.degradation().map_or("-".into(), |d| format!("{d:.4}"))
        );
    }
    let strata_csv = repo_root().join("results/strata.csv");
    std::fs::write(&strata_csv, strata.render_csv()).expect("write results/strata.csv");
    println!("wrote {}", strata_csv.display());

    let stages = [
        &analysis,
        &assignment,
        &scheduling,
        &end_to_end,
        &full_pipeline,
        &corpus_sweep,
        &compile_cache,
        &fuzz,
        &serve,
    ];
    println!();
    for s in &stages {
        println!(
            "{:<12} baseline {:>12}  amortized {:>12}  speedup {:>6.1}%",
            s.name,
            fmt_ns(s.baseline.median_ns),
            fmt_ns(s.amortized.median_ns),
            s.speedup_percent()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"corpus\": {{\"loops\": {}, \"seed\": {}, \"machine\": \"{}\"}},\n",
        corpus.len(),
        0x1998_C1A5u64,
        json_escape(machine.name())
    ));
    json.push_str(&format!("  \"samples\": {},\n", SAMPLES));
    json.push_str("  \"baseline\": \"vendored seed implementation (clasp_bench::seed)\",\n");
    json.push_str("  \"stages\": {\n");
    for (i, s) in stages.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"baseline_median_ns\": {}, \"amortized_median_ns\": {}, \"speedup_percent\": {:.1}}}{}\n",
            s.name,
            s.baseline.median_ns,
            s.amortized.median_ns,
            s.speedup_percent(),
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},\n",
        cache_stats.hits, cache_stats.misses, cache_stats.entries
    ));
    json.push_str(&format!(
        "  \"fuzz\": {{\"cases\": {}, \"serial_median_ns\": {}, \"parallel_median_ns\": {}}},\n",
        FUZZ_CASES, fuzz.baseline.median_ns, fuzz.amortized.median_ns
    ));
    json.push_str(&format!("  \"strata\": {},\n", strata.render_json_block()));
    json.push_str("  \"obs\": {\"counters\": {\n");
    for (i, (name, value)) in obs_counters.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            json_escape(name),
            value,
            if i + 1 < obs_counters.len() { "," } else { "" }
        ));
    }
    json.push_str("  }}\n");
    json.push_str("}\n");

    let out = repo_root().join("BENCH_sched.json");

    // Obs-overhead gate: the timings above all run with the disabled
    // sink, so comparing this run's end-to-end median against the
    // committed one measures what instrumentation costs when it is off.
    // CI greps this line and fails the build past +3%.
    if let Some(committed) = committed_stage_ns(&out, "end-to-end") {
        let now = end_to_end.amortized.median_ns as f64;
        let delta = (now / committed as f64 - 1.0) * 100.0;
        println!("\nend-to-end vs committed BENCH_sched.json: {delta:+.1}% (gate: < +3%)");
    }

    // Per-stage regression lines against the committed report: CI greps
    // the full-pipeline and assignment lines and fails the build if
    // either amortized median regressed more than 3% since the last
    // committed numbers.
    for s in &stages {
        if let Some(committed) = committed_stage_ns(&out, s.name) {
            let delta = (s.amortized.median_ns as f64 / committed as f64 - 1.0) * 100.0;
            println!(
                "stage {} vs committed BENCH_sched.json: {delta:+.1}%",
                s.name
            );
        }
    }

    std::fs::write(&out, json).expect("write BENCH_sched.json");
    println!("\nwrote {}", out.display());

    load_stage();
}

/// The load stage: the traffic-shaped harness over the full
/// (transport × clients × mix) matrix, written to `BENCH_load.json`.
/// Hard gates: zero load errors and no fd growth across the run. Soft
/// gate against the committed baseline: each cell's p99 must stay
/// within `LOAD_GATE_FACTOR`× of the committed number, with the
/// committed value clamped up to `clasp_load::GATE_FLOOR_NS` so a
/// µs-scale hot-cell baseline can't turn one scheduler hiccup into a
/// 100x "regression" — latency percentiles on shared CI hardware are
/// far noisier than medians, so the factor is loose; the gate exists
/// to catch order-of-magnitude collapses (a lost cache tier, an
/// accidental sync point), not single-digit drift.
fn load_stage() {
    const LOAD_GATE_FACTOR: f64 = 8.0;

    let profile = clasp::load::LoadProfile {
        hard_dir: Some(repo_root().join("results/hard")),
        ..clasp::load::LoadProfile::default()
    };
    println!(
        "\nload: {} requests/cell, seed {}, {} cells",
        profile.requests_per_cell,
        profile.seed,
        profile.transports.len() * profile.clients.len() * profile.mixes.len()
    );
    let suite = match clasp::load::run_load_suite(&profile, &Obs::disabled()) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("load stage failed: {e}");
            std::process::exit(1);
        }
    };
    for cell in &suite.cells {
        println!("{}", cell.human_line());
    }
    assert_eq!(suite.total_errors(), 0, "load errors during the suite");
    if let Some(growth) = suite.watermark.fd_growth() {
        assert!(growth <= 4, "load stage leaked {growth} fds");
    }

    let out = repo_root().join("BENCH_load.json");
    if let Ok(committed) = std::fs::read_to_string(&out) {
        let mut violations = 0usize;
        for cell in &suite.cells {
            let Some(base) = clasp_load::committed_cell_field(&committed, &cell.name, "p99_ns")
            else {
                continue;
            };
            if base == 0 {
                continue;
            }
            let ratio = clasp_load::gate_ratio(cell.report.overall.percentile(0.99), base);
            println!(
                "load cell {} p99 vs committed BENCH_load.json: {ratio:.2}x (gate: < {LOAD_GATE_FACTOR}x)",
                cell.name
            );
            if ratio > LOAD_GATE_FACTOR {
                violations += 1;
            }
        }
        assert_eq!(
            violations, 0,
            "load p99 regressed past {LOAD_GATE_FACTOR}x of the committed baseline"
        );
    }
    std::fs::write(&out, suite.render_json()).expect("write BENCH_load.json");
    println!("wrote {}", out.display());
}

/// The committed report's amortized median for one stage, parsed with
/// the same no-dependency discipline the writer uses: find the stage
/// line, pull the `amortized_median_ns` integer out of it.
fn committed_stage_ns(path: &std::path::Path, stage: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{stage}\"");
    let line = text.lines().find(|l| l.contains(&needle))?;
    let field = "\"amortized_median_ns\": ";
    let at = line.find(field)? + field.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn repo_root() -> PathBuf {
    // crates/bench -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}
