//! Benchmarks of the cluster assignment phase itself: the four heuristic
//! variants and each machine family.

use clasp_bench::run;
use clasp_core::{assign, AssignConfig, Variant};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};
use clasp_machine::presets;

fn main() {
    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 21,
    });
    let m = presets::two_cluster_gp(2, 1);
    for v in Variant::ALL {
        run(&format!("assign-variants-2c/{}", v.label()), 10, || {
            corpus
                .iter()
                .filter(|g| assign(g, &m, AssignConfig::from(v)).is_ok())
                .count()
        });
    }

    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 22,
    });
    let machines = [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::four_cluster_fs(4, 2),
        presets::four_cluster_grid(2),
        presets::eight_cluster_gp(7, 3),
    ];
    for m in &machines {
        run(&format!("assign-machines/{}", m.name()), 10, || {
            corpus
                .iter()
                .filter(|g| assign(g, m, AssignConfig::default()).is_ok())
                .count()
        });
    }

    // Largest Livermore kernel, tightest machine.
    let g = livermore(9);
    let m = presets::four_cluster_grid(2);
    run("assign/ll9-on-grid", 20, || {
        assign(&g, &m, AssignConfig::default()).unwrap().ii
    });
}
