//! Benchmarks of the cluster assignment phase itself: the four heuristic
//! variants and each machine family.

use clasp_core::{assign, AssignConfig, Variant};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};
use clasp_machine::presets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_variants(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 21,
    });
    let m = presets::two_cluster_gp(2, 1);
    let mut group = c.benchmark_group("assign-variants-2c");
    for v in Variant::ALL {
        group.bench_with_input(BenchmarkId::new("variant", v.label()), &v, |b, &v| {
            b.iter(|| {
                corpus
                    .iter()
                    .filter(|g| assign(g, &m, AssignConfig::from(v)).is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_machines(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 22,
    });
    let machines = [
        presets::two_cluster_gp(2, 1),
        presets::four_cluster_gp(4, 2),
        presets::four_cluster_fs(4, 2),
        presets::four_cluster_grid(2),
        presets::eight_cluster_gp(7, 3),
    ];
    let mut group = c.benchmark_group("assign-machines");
    for m in &machines {
        group.bench_with_input(BenchmarkId::new("machine", m.name()), m, |b, m| {
            b.iter(|| {
                corpus
                    .iter()
                    .filter(|g| assign(g, m, AssignConfig::default()).is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_large_kernel(c: &mut Criterion) {
    // Largest Livermore kernel, tightest machine.
    let g = livermore(9);
    let m = presets::four_cluster_grid(2);
    c.bench_function("assign/ll9-on-grid", |b| {
        b.iter(|| {
            assign(std::hint::black_box(&g), &m, AssignConfig::default())
                .unwrap()
                .ii
        })
    });
}

criterion_group!(benches, bench_variants, bench_machines, bench_large_kernel);
criterion_main!(benches);
