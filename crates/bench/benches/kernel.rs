//! Benchmarks of the back end: kernel emission, stage scheduling, and
//! functional simulation throughput.

use clasp::{compile_loop, PipelineConfig};
use clasp_bench::run;
use clasp_kernel::{emit_program, run_program, stage_schedule, verify_pipelined};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;

fn compiled_corpus() -> Vec<clasp::CompiledLoop> {
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 51,
    });
    let m = presets::four_cluster_gp(4, 2);
    corpus
        .iter()
        .map(|g| compile_loop(g, &m, PipelineConfig::default()).unwrap())
        .collect()
}

fn main() {
    let compiled = compiled_corpus();

    run("kernel/emit-40-loops-x8-iters", 20, || {
        compiled
            .iter()
            .map(|cl| {
                emit_program(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8)
                    .issue_count()
            })
            .sum::<usize>()
    });

    let programs: Vec<_> = compiled
        .iter()
        .map(|cl| {
            (
                cl.assignment.graph.clone(),
                emit_program(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8),
            )
        })
        .collect();
    run("kernel/simulate-40-loops-x8-iters", 20, || {
        programs
            .iter()
            .map(|(g, p)| run_program(g, p).unwrap().len())
            .sum::<usize>()
    });
    run("kernel/verify-40-loops-x8-iters", 20, || {
        for cl in &compiled {
            verify_pipelined(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8).unwrap();
        }
    });

    run("kernel/stage-schedule-40-loops", 20, || {
        compiled
            .iter()
            .map(|cl| stage_schedule(&cl.assignment.graph, &cl.schedule).moves)
            .sum::<usize>()
    });
}
