//! Benchmarks of the back end: kernel emission, stage scheduling, and
//! functional simulation throughput.

use clasp::{compile_loop, PipelineConfig};
use clasp_kernel::{emit_program, run_program, stage_schedule, verify_pipelined};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;
use criterion::{criterion_group, criterion_main, Criterion};

fn compiled_corpus() -> Vec<clasp::CompiledLoop> {
    let corpus = generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 51,
    });
    let m = presets::four_cluster_gp(4, 2);
    corpus
        .iter()
        .map(|g| compile_loop(g, &m, PipelineConfig::default()).unwrap())
        .collect()
}

fn bench_emit(c: &mut Criterion) {
    let compiled = compiled_corpus();
    c.bench_function("kernel/emit-40-loops-x8-iters", |b| {
        b.iter(|| {
            compiled
                .iter()
                .map(|cl| {
                    emit_program(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8)
                        .issue_count()
                })
                .sum::<usize>()
        })
    });
}

fn bench_simulate(c: &mut Criterion) {
    let compiled = compiled_corpus();
    let programs: Vec<_> = compiled
        .iter()
        .map(|cl| {
            (
                cl.assignment.graph.clone(),
                emit_program(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8),
            )
        })
        .collect();
    c.bench_function("kernel/simulate-40-loops-x8-iters", |b| {
        b.iter(|| {
            programs
                .iter()
                .map(|(g, p)| run_program(g, p).unwrap().len())
                .sum::<usize>()
        })
    });
    c.bench_function("kernel/verify-40-loops-x8-iters", |b| {
        b.iter(|| {
            for cl in &compiled {
                verify_pipelined(&cl.assignment.graph, &cl.assignment.map, &cl.schedule, 8)
                    .unwrap();
            }
        })
    });
}

fn bench_stage(c: &mut Criterion) {
    let compiled = compiled_corpus();
    c.bench_function("kernel/stage-schedule-40-loops", |b| {
        b.iter(|| {
            compiled
                .iter()
                .map(|cl| stage_schedule(&cl.assignment.graph, &cl.schedule).moves)
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_emit, bench_simulate, bench_stage);
criterion_main!(benches);
