//! Benchmarks of the iterative modulo scheduler: unified baselines and
//! clustered (annotated) scheduling.

use clasp_core::{assign, AssignConfig};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;
use clasp_sched::{iterative_schedule, schedule_unified, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_unified(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 31,
    });
    let m = presets::unified_gp(16);
    c.bench_function("sched/unified-16w-corpus-100", |b| {
        b.iter(|| {
            corpus
                .iter()
                .filter_map(|g| schedule_unified(g, &m, SchedulerConfig::default()))
                .map(|s| u64::from(s.ii()))
                .sum::<u64>()
        })
    });
}

fn bench_clustered(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        loops: 60,
        scc_loops: 14,
        seed: 32,
    });
    let m = presets::four_cluster_gp(4, 2);
    // Pre-assign once; bench only phase 2.
    let assignments: Vec<_> = corpus
        .iter()
        .map(|g| assign(g, &m, AssignConfig::default()).unwrap())
        .collect();
    c.bench_function("sched/clustered-4c-corpus-60", |b| {
        b.iter(|| {
            assignments
                .iter()
                .filter_map(|a| {
                    iterative_schedule(&a.graph, &m, &a.map, a.ii, SchedulerConfig::default())
                })
                .count()
        })
    });
}

criterion_group!(benches, bench_unified, bench_clustered);
criterion_main!(benches);
