//! Benchmarks of the iterative modulo scheduler: unified baselines and
//! clustered (annotated) scheduling, with and without a shared
//! [`SchedContext`] across the II sweep.

use clasp_bench::run;
use clasp_core::{assign, AssignConfig};
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;
use clasp_sched::{
    iterative_schedule, max_ii_bound, schedule_unified, SchedContext, SchedulerConfig,
};

fn main() {
    let cfg = SchedulerConfig::default();

    let corpus = generate_corpus(CorpusConfig {
        loops: 100,
        scc_loops: 23,
        seed: 31,
    });
    let m = presets::unified_gp(16);
    run("sched/unified-16w-corpus-100", 20, || {
        corpus
            .iter()
            .filter_map(|g| schedule_unified(g, &m, cfg).ok())
            .map(|s| u64::from(s.ii()))
            .sum::<u64>()
    });

    let corpus = generate_corpus(CorpusConfig {
        loops: 60,
        scc_loops: 14,
        seed: 32,
    });
    let m = presets::four_cluster_gp(4, 2);
    // Pre-assign once; bench only phase 2.
    let assignments: Vec<_> = corpus
        .iter()
        .map(|g| assign(g, &m, AssignConfig::default()).unwrap())
        .collect();
    run("sched/clustered-4c-corpus-60", 20, || {
        assignments
            .iter()
            .filter_map(|a| iterative_schedule(&a.graph, &m, &a.map, a.ii, cfg).ok())
            .count()
    });

    // II sweep from 1: per-II recompute (fresh context each II, the seed
    // behaviour) versus one amortized context across the whole sweep.
    run("sweep/per-ii-recompute-4c-corpus-60", 10, || {
        assignments
            .iter()
            .filter_map(|a| {
                let cap = max_ii_bound(&a.graph, 1);
                (1..=cap).find_map(|ii| iterative_schedule(&a.graph, &m, &a.map, ii, cfg).ok())
            })
            .count()
    });
    run("sweep/shared-context-4c-corpus-60", 10, || {
        assignments
            .iter()
            .filter_map(|a| {
                let mut ctx = SchedContext::new(&a.graph, &m, &a.map).ok()?;
                let cap = max_ii_bound(&a.graph, 1);
                ctx.schedule_in_range(1, cap, cfg).ok()
            })
            .count()
    });
}
