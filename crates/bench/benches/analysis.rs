//! Benchmarks of the graph-analysis substrate: SCC detection, RecMII, the
//! swing ordering, the amortized [`LoopAnalysis`], and corpus generation.

use clasp_bench::run;
use clasp_ddg::{find_sccs, rec_mii, swing_order, LoopAnalysis};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};

fn corpus_of(loops: usize) -> Vec<clasp_ddg::Ddg> {
    generate_corpus(CorpusConfig {
        loops,
        scc_loops: loops / 4,
        seed: 11,
    })
}

fn main() {
    let corpus = corpus_of(200);

    run("scc/corpus-200", 20, || {
        corpus
            .iter()
            .map(|g| find_sccs(g).non_trivial_count())
            .sum::<usize>()
    });

    for k in [5u32, 16, 20, 23] {
        let g = livermore(k);
        run(&format!("recmii/livermore-{k}"), 50, || rec_mii(&g));
    }
    run("recmii/corpus-200", 20, || {
        corpus.iter().map(|g| rec_mii(g) as u64).sum::<u64>()
    });

    run("swing-order/corpus-200", 20, || {
        corpus.iter().map(|g| swing_order(g).len()).sum::<usize>()
    });

    run("loop-analysis/corpus-200", 20, || {
        corpus
            .iter()
            .map(|g| LoopAnalysis::compute(g).order().len())
            .sum::<usize>()
    });

    run("loopgen/500-loops", 10, || corpus_of(500).len());
}
