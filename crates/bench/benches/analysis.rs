//! Benchmarks of the graph-analysis substrate: SCC detection, RecMII, and
//! the swing ordering, across loop sizes.

use clasp_ddg::{find_sccs, rec_mii, swing_order};
use clasp_loopgen::{generate_corpus, livermore, CorpusConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn corpus_of(loops: usize) -> Vec<clasp_ddg::Ddg> {
    generate_corpus(CorpusConfig {
        loops,
        scc_loops: loops / 4,
        seed: 11,
    })
}

fn bench_scc(c: &mut Criterion) {
    let corpus = corpus_of(200);
    c.bench_function("scc/corpus-200", |b| {
        b.iter(|| {
            corpus
                .iter()
                .map(|g| find_sccs(std::hint::black_box(g)).non_trivial_count())
                .sum::<usize>()
        })
    });
}

fn bench_recmii(c: &mut Criterion) {
    let mut group = c.benchmark_group("recmii");
    for k in [5u32, 16, 20, 23] {
        let g = livermore(k);
        group.bench_with_input(BenchmarkId::new("livermore", k), &g, |b, g| {
            b.iter(|| rec_mii(std::hint::black_box(g)))
        });
    }
    let corpus = corpus_of(200);
    group.bench_function("corpus-200", |b| {
        b.iter(|| {
            corpus
                .iter()
                .map(|g| rec_mii(std::hint::black_box(g)) as u64)
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let corpus = corpus_of(200);
    c.bench_function("swing-order/corpus-200", |b| {
        b.iter(|| {
            corpus
                .iter()
                .map(|g| swing_order(std::hint::black_box(g)).len())
                .sum::<usize>()
        })
    });
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("loopgen/500-loops", |b| {
        b.iter(|| corpus_of(std::hint::black_box(500)).len())
    });
}

criterion_group!(
    benches,
    bench_scc,
    bench_recmii,
    bench_ordering,
    bench_corpus_generation
);
criterion_main!(benches);
