//! End-to-end throughput of the figure-regeneration pipeline: how fast a
//! paper figure's data series can be produced, per machine family. One
//! bench per experiment family (Figures 12-19, Table 3, grid).

use clasp::{compile_loop, unified_ii, PipelineConfig};
use clasp_bench::run;
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;

fn mini_corpus() -> Vec<clasp_ddg::Ddg> {
    generate_corpus(CorpusConfig {
        loops: 50,
        scc_loops: 12,
        seed: 41,
    })
}

/// Count loops matching the unified II — the y-axis value at x=0 of every
/// figure — over the mini corpus.
fn matched(corpus: &[clasp_ddg::Ddg], m: &clasp_machine::MachineSpec) -> usize {
    corpus
        .iter()
        .filter(|g| {
            let u = unified_ii(g, m, Default::default()).unwrap();
            compile_loop(g, m, PipelineConfig::default())
                .map(|c| c.ii() == u)
                .unwrap_or(false)
        })
        .count()
}

fn main() {
    let corpus = mini_corpus();
    let cases = [
        ("fig12-2c-gp", presets::two_cluster_gp(2, 1)),
        ("fig13-4c-gp", presets::four_cluster_gp(4, 2)),
        ("fig14-2c-1bus", presets::two_cluster_gp(1, 1)),
        ("fig16-4c-2bus", presets::four_cluster_gp(2, 2)),
        ("fig17-4c-1port", presets::four_cluster_gp(4, 1)),
        ("fig18-2c-fs", presets::two_cluster_fs(2, 1)),
        ("fig19-4c-fs", presets::four_cluster_fs(4, 2)),
        ("table3-6c", presets::six_cluster_gp(6, 3)),
        ("table3-8c", presets::eight_cluster_gp(7, 3)),
        ("grid-4c", presets::four_cluster_grid(2)),
    ];
    for (name, m) in cases {
        run(&format!("figure-series/{name}"), 10, || {
            matched(&corpus, &m)
        });
    }
}
