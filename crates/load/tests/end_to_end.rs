//! The injection boundary, closed end to end: build a schedule with the
//! root crate's real wire renderer, replay it through the real
//! `CompileService`, and check the harness's accounting against the
//! service's own cache counters. Uses the dev-only dependency on
//! `clasp` — the library itself never sees these types.

use clasp::load::{classify_reply, wire_of};
use clasp::CompileService;
use clasp_load::{build_schedule, run_cell, Mix, MixConfig, ReqClass, RunConfig};
use clasp_obs::Obs;

fn schedule(mix: Mix, requests: usize) -> clasp_load::Schedule {
    build_schedule(
        &MixConfig {
            mix,
            requests,
            pool_seed: 5,
            cell_seed: 9,
            hard_dir: None,
        },
        wire_of,
    )
}

#[test]
fn hot_mix_is_all_cache_hits_after_prewarm() {
    let sched = schedule(Mix::Hot, 40);
    let service = CompileService::in_memory();
    let factory = |_: usize| {
        let service = &service;
        Ok(move |wire: &str| classify_reply(&service.respond(wire)))
    };
    clasp_load::prewarm(&sched.hot_wires, factory).expect("prewarm");
    let misses_after_warm = service.stats().misses;

    let report = run_cell(
        &sched.requests,
        &RunConfig {
            clients: 4,
            rate: 0.0,
        },
        &Obs::disabled(),
        factory,
    )
    .expect("run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.overall.total(), 40);
    // Every hot request after the warm-up pass is a cache hit: the
    // service compiled nothing new.
    assert_eq!(service.stats().misses, misses_after_warm);
    assert!(service.stats().hits >= 40);
}

#[test]
fn cold_mix_compiles_every_request_exactly_once() {
    let sched = schedule(Mix::Cold, 30);
    let service = CompileService::in_memory();
    let report = run_cell(
        &sched.requests,
        &RunConfig {
            clients: 2,
            rate: 0.0,
        },
        &Obs::disabled(),
        |_| {
            let service = &service;
            Ok(move |wire: &str| classify_reply(&service.respond(wire)))
        },
    )
    .expect("run");
    assert_eq!(report.errors, 0);
    assert_eq!(report.by_class[ReqClass::Cold.index()].total(), 30);
    // Thirty unique loops: thirty cache misses, zero hits.
    assert_eq!(service.stats().misses, 30);
    assert_eq!(service.stats().hits, 0);
}
