//! Process resource sampling: open file descriptors and resident set
//! size, read from `/proc/self` on Linux. On platforms without procfs
//! every sample is `None` and the gates that consume them are skipped —
//! the load run still measures latency.

/// One point-in-time resource sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSample {
    /// Open file descriptors (`/proc/self/fd` entry count).
    pub fds: Option<u64>,
    /// Resident set size in KiB (`VmRSS` from `/proc/self/status`).
    pub rss_kb: Option<u64>,
}

/// Take a sample now.
pub fn sample() -> ResourceSample {
    ResourceSample {
        fds: fd_count(),
        rss_kb: rss_kb(),
    }
}

fn fd_count() -> Option<u64> {
    // Counting opens one fd for the directory itself; the bias is
    // constant across samples, so watermark *deltas* are exact.
    let entries = std::fs::read_dir("/proc/self/fd").ok()?;
    Some(entries.count() as u64)
}

fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_ascii_whitespace().nth(1)?.parse().ok()
}

/// Before / peak / after watermarks over a run. `peak` is the maximum
/// over every [`Watermark::mark`] call (plus before and after), so
/// leaks that only show while connections are open are still caught.
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    /// Sample taken at construction.
    pub before: ResourceSample,
    /// Highest fd count observed.
    pub fd_peak: Option<u64>,
    /// Highest RSS observed, KiB.
    pub rss_peak_kb: Option<u64>,
    /// Sample taken at [`Watermark::finish`].
    pub after: ResourceSample,
}

impl Watermark {
    /// Start a watermark (samples now).
    pub fn start() -> Watermark {
        let before = sample();
        Watermark {
            before,
            fd_peak: before.fds,
            rss_peak_kb: before.rss_kb,
            after: ResourceSample {
                fds: None,
                rss_kb: None,
            },
        }
    }

    /// Fold a fresh sample into the peaks.
    pub fn mark(&mut self) {
        let s = sample();
        self.fd_peak = max_opt(self.fd_peak, s.fds);
        self.rss_peak_kb = max_opt(self.rss_peak_kb, s.rss_kb);
    }

    /// Take the final sample.
    pub fn finish(&mut self) {
        self.mark();
        self.after = sample();
    }

    /// Net fd growth across the run (`None` off-procfs). A server that
    /// leaks one stream clone per connection shows up here after its
    /// daemons shut down.
    pub fn fd_growth(&self) -> Option<i64> {
        Some(self.after.fds? as i64 - self.before.fds? as i64)
    }
}

fn max_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_track_fd_growth() {
        let mut w = Watermark::start();
        if w.before.fds.is_none() {
            return; // no procfs on this platform
        }
        // Hold some fds open across a mark, then drop them.
        let held: Vec<_> = (0..8)
            .map(|_| std::fs::File::open("/proc/self/status").unwrap())
            .collect();
        w.mark();
        drop(held);
        w.finish();
        assert!(w.fd_peak.unwrap() >= w.before.fds.unwrap() + 8);
        let growth = w.fd_growth().unwrap();
        assert!(growth.abs() <= 2, "fds leaked: {growth}");
    }

    #[test]
    fn rss_is_reported_on_linux() {
        let s = sample();
        if let Some(rss) = s.rss_kb {
            assert!(rss > 0);
        }
    }
}
