//! The load suite report: one [`CellSummary`] per (transport ×
//! concurrency × mix) cell, rendered as the line-parseable
//! `BENCH_load.json` that the repo commits as its latency baseline.
//!
//! Every cell is written on its own JSON line so the committed-baseline
//! reader ([`committed_cell_field`]) can stay a line scanner, exactly
//! like `bench-report`'s `committed_stage_ns` — no JSON parser in the
//! gate path.

use crate::resources::Watermark;
use crate::runner::CellReport;

/// One finished cell, named `{transport}/c{clients}/{mix}` (e.g.
/// `tcp/c4/mixed`).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Cell name, the JSON key.
    pub name: String,
    /// Requests per class in the replayed schedule.
    pub class_counts: [usize; 4],
    /// Measured result.
    pub report: CellReport,
}

impl CellSummary {
    /// One human-readable line for terminal output.
    pub fn human_line(&self) -> String {
        let h = &self.report.overall;
        format!(
            "{:<18} p50 {:>9}  p99 {:>9}  p99.9 {:>9}  {:>8.1} req/s  errors {}",
            self.name,
            fmt_ns(h.percentile(0.50)),
            fmt_ns(h.percentile(0.99)),
            fmt_ns(h.percentile(0.999)),
            self.report.throughput_rps(),
            self.report.errors,
        )
    }
}

/// The whole suite: every cell plus run-wide metadata and resource
/// watermarks.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Base seed the request schedules derive from.
    pub seed: u64,
    /// Requests replayed per cell.
    pub requests_per_cell: usize,
    /// `"closed"` or `"open@<rate>"`.
    pub mode: String,
    /// Machine preset label.
    pub machine: String,
    /// Finished cells, in run order.
    pub cells: Vec<CellSummary>,
    /// fd/RSS watermarks over the whole suite.
    pub watermark: Watermark,
}

impl SuiteReport {
    /// Total load errors across every cell.
    pub fn total_errors(&self) -> u64 {
        self.cells.iter().map(|c| c.report.errors).sum()
    }

    /// Render the committed `BENCH_load.json` text (one cell per line).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"bench\": \"clasp-load\", \"seed\": {}, \"requests_per_cell\": {}, \"mode\": \"{}\", \"machine\": \"{}\",\n",
            self.seed, self.requests_per_cell, self.mode, self.machine
        ));
        out.push_str("  \"cells\": {\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let h = &cell.report.overall;
            out.push_str(&format!(
                "    \"{}\": {{\"requests\": {}, \"errors\": {}, \"pipeline_failures\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"mean_ns\": {}, \"max_ns\": {}, \"throughput_rps\": {:.1}}}{}\n",
                cell.name,
                cell.report.requests,
                cell.report.errors,
                cell.report.pipeline_failures,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.percentile(0.999),
                h.mean_ns(),
                h.max_ns(),
                cell.report.throughput_rps(),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n");
        let w = &self.watermark;
        out.push_str(&format!(
            "  \"resources\": {{\"fd_before\": {}, \"fd_peak\": {}, \"fd_after\": {}, \
             \"rss_before_kb\": {}, \"rss_peak_kb\": {}}}\n",
            json_opt(w.before.fds),
            json_opt(w.fd_peak),
            json_opt(w.after.fds),
            json_opt(w.before.rss_kb),
            json_opt(w.rss_peak_kb),
        ));
        out.push_str("}\n");
        out
    }
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Read one integer field of one cell from a committed
/// `BENCH_load.json` text. Line-based: finds the line holding
/// `"{cell}":` and scans it for `"{field}": <digits>`.
pub fn committed_cell_field(text: &str, cell: &str, field: &str) -> Option<u64> {
    let cell_key = format!("\"{cell}\":");
    let field_key = format!("\"{field}\":");
    let line = text.lines().find(|l| l.contains(&cell_key))?;
    let at = line.find(&field_key)? + field_key.len();
    let digits: String = line[at..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Noise floor for the p99 regression gate, in nanoseconds.
///
/// Hot cache-hit cells have µs-scale p99 baselines, so their top 1% is
/// dominated by whatever scheduler hiccup the OS dealt that run — a
/// single ~10 ms stall lands in the 99th percentile and makes a pure
/// ratio against a lucky (hiccup-free) committed baseline arbitrarily
/// large. Gating against `max(committed, floor)` keeps ms-scale cells
/// gated on their real baseline while giving µs-scale cells a fixed
/// absolute budget (`factor × floor`) that a genuine collapse — a lost
/// cache tier, an accidental global sync point — still blows through.
pub const GATE_FLOOR_NS: u64 = 5_000_000;

/// The gated regression ratio for one cell: current p99 over the
/// committed p99 clamped up to [`GATE_FLOOR_NS`].
pub fn gate_ratio(current_p99_ns: u64, committed_p99_ns: u64) -> f64 {
    current_p99_ns as f64 / committed_p99_ns.max(GATE_FLOOR_NS) as f64
}

/// Format nanoseconds with an adaptive unit for human output.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::runner::CellReport;

    fn summary(name: &str, lat: &[u64]) -> CellSummary {
        let mut overall = Histogram::new();
        for &v in lat {
            overall.record(v);
        }
        CellSummary {
            name: name.to_string(),
            class_counts: [lat.len(), 0, 0, 0],
            report: CellReport {
                requests: lat.len() as u64,
                errors: 0,
                pipeline_failures: 0,
                wall_ns: 1_000_000_000,
                overall,
                by_class: std::array::from_fn(|_| Histogram::new()),
            },
        }
    }

    fn suite() -> SuiteReport {
        SuiteReport {
            seed: 42,
            requests_per_cell: 3,
            mode: "closed".to_string(),
            machine: "4c-gp-4b-2p".to_string(),
            cells: vec![
                summary("inproc/c1/hot", &[1_000, 2_000, 4_000]),
                summary("tcp/c4/mixed", &[50_000, 60_000, 900_000]),
            ],
            watermark: Watermark::start(),
        }
    }

    #[test]
    fn rendered_json_round_trips_through_the_committed_reader() {
        let text = suite().render_json();
        let p99 = committed_cell_field(&text, "tcp/c4/mixed", "p99_ns").unwrap();
        // Bucketed upper bound of the exact 900_000 max, clamped to it.
        assert_eq!(p99, 900_000);
        assert_eq!(
            committed_cell_field(&text, "inproc/c1/hot", "requests"),
            Some(3)
        );
        assert_eq!(
            committed_cell_field(&text, "inproc/c1/hot", "errors"),
            Some(0)
        );
        assert_eq!(committed_cell_field(&text, "no/such/cell", "p99_ns"), None);
        assert_eq!(committed_cell_field(&text, "tcp/c4/mixed", "nope"), None);
    }

    #[test]
    fn rendered_json_is_structurally_sane() {
        let text = suite().render_json();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert_eq!(text.matches("\"p999_ns\":").count(), 2);
        assert!(text.contains("\"resources\":"));
        // Exactly one cell per line keeps the reader line-based.
        assert!(text
            .lines()
            .filter(|l| l.contains("\"p50_ns\":"))
            .all(|l| l.contains("\"throughput_rps\":")));
    }

    #[test]
    fn human_line_mentions_the_cell_and_units() {
        let line = suite().cells[1].human_line();
        assert!(line.contains("tcp/c4/mixed"));
        assert!(line.contains("errors 0"));
    }

    #[test]
    fn gate_ratio_clamps_tiny_baselines_to_the_floor() {
        // µs-scale committed baseline: denominator is the floor, so a
        // 10 ms hiccup reads as 2x, not 77x.
        assert!((gate_ratio(10_000_000, 129_023) - 2.0).abs() < 1e-9);
        // ms-scale committed baseline: the floor is inert.
        assert!((gate_ratio(16_000_000, 8_000_000) - 2.0).abs() < 1e-9);
        // A genuine collapse still blows through the floored gate.
        assert!(gate_ratio(400_000_000, 129_023) > 8.0);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
