//! # clasp-load — traffic-shaped load harness
//!
//! Replays a configurable synthetic request mix against a CLASP compile
//! endpoint and reports the latency *distribution* — p50/p90/p99/p99.9
//! from a fixed-bucket histogram — plus throughput, error counts, and
//! fd/RSS watermarks. Medians hide exactly the traffic this system
//! worries about (exact-backend solves are heavy-tailed, cold compiles
//! are 100× a cache hit), so every number the harness emits is a
//! percentile over a deterministic request schedule.
//!
//! The crate is transport-agnostic by construction: it knows nothing of
//! `CompileService` or the `clasp-serve` wire protocol. Wire rendering
//! is injected into [`build_schedule`] and clients are injected into
//! [`run_cell`] as closures; the root crate binds both (in-process
//! facade and TCP daemon) in its `load` module, the same
//! dependency-inversion used by `clasp-oracle`.
//!
//! Layers, bottom up:
//!
//! - [`histogram`] — deterministic log-linear latency histogram,
//!   mergeable across worker threads;
//! - [`mix`] — the request classes (hot / cold / hard / exact), named
//!   mixes, and the seeded schedule builder;
//! - [`runner`] — closed- and open-loop replay at configurable client
//!   concurrency;
//! - [`resources`] — `/proc/self` fd and RSS watermarks, the leak
//!   gates;
//! - [`report`] — per-cell summaries, the `BENCH_load.json` renderer,
//!   and the committed-baseline reader the regression gate uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod mix;
pub mod report;
pub mod resources;
pub mod runner;

pub use histogram::Histogram;
pub use mix::{build_schedule, CaseSpec, LoadRequest, Mix, MixConfig, ReqClass, Schedule};
pub use report::{
    committed_cell_field, fmt_ns, gate_ratio, CellSummary, SuiteReport, GATE_FLOOR_NS,
};
pub use resources::{sample, ResourceSample, Watermark};
pub use runner::{prewarm, run_cell, CellReport, ReplyOutcome, RunConfig};
