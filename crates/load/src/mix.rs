//! Synthetic request mixes: the deterministic schedule of wire requests
//! a load run replays.
//!
//! A schedule is built from four request classes:
//!
//! - **hot** — repeats drawn from a small fixed pool of loops, so a
//!   warmed cache answers them from memory (the cache-hit latency
//!   floor);
//! - **cold** — unique loops from the `loopgen` synthetic stream, each
//!   compiled exactly once (the full-pipeline latency);
//! - **hard** — fuzz-mined pathological loop/machine pairs from the
//!   committed `results/hard/` corpus, compiled with the heuristic
//!   backend;
//! - **exact** — the same hard pairs compiled with `--backend exact`,
//!   whose CDCL solve times are heavy-tailed — exactly the traffic that
//!   makes percentiles, not medians, the right metric.
//!
//! Everything about a schedule — which loops, which classes, in which
//!   order — is a pure function of the [`MixConfig`], so two runs with
//! the same config replay byte-identical request streams. Wire
//! rendering is injected (see [`CaseSpec`] and the `render` parameter):
//! the harness never depends on the root crate's `ServiceRequest`.

use clasp_loopgen::rng::{fold_seed, Rng};
use clasp_loopgen::{generate_corpus, CorpusConfig, LoopStream, Stratum};
use std::path::{Path, PathBuf};

/// The class of one request in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// Repeat of a pooled loop (cache hit once warmed).
    Hot,
    /// Unique loop, compiled exactly once.
    Cold,
    /// Fuzz-mined pathological pair, heuristic backend.
    Hard,
    /// Fuzz-mined pathological pair, exact SAT backend.
    Exact,
}

impl ReqClass {
    /// All classes, in reporting order.
    pub const ALL: [ReqClass; 4] = [
        ReqClass::Hot,
        ReqClass::Cold,
        ReqClass::Hard,
        ReqClass::Exact,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReqClass::Hot => "hot",
            ReqClass::Cold => "cold",
            ReqClass::Hard => "hard",
            ReqClass::Exact => "exact",
        }
    }

    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            ReqClass::Hot => 0,
            ReqClass::Cold => 1,
            ReqClass::Hard => 2,
            ReqClass::Exact => 3,
        }
    }
}

/// Named mixes — the benchmark matrix's third axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 100% hot repeats: the cache-hit latency floor.
    Hot,
    /// 100% cold uniques: full-pipeline compile latency.
    Cold,
    /// 70% hot, 20% cold, 6% hard, 4% exact: traffic-shaped.
    Mixed,
}

impl Mix {
    /// Stable lowercase name (the cell-name component).
    pub fn name(self) -> &'static str {
        match self {
            Mix::Hot => "hot",
            Mix::Cold => "cold",
            Mix::Mixed => "mixed",
        }
    }

    /// Parse a mix name.
    pub fn parse(s: &str) -> Option<Mix> {
        match s {
            "hot" => Some(Mix::Hot),
            "cold" => Some(Mix::Cold),
            "mixed" => Some(Mix::Mixed),
            _ => None,
        }
    }
}

/// One compile case, ready for wire rendering: the two canonical texts
/// plus the backend choice. The injected renderer turns this into the
/// actual frame body.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// `.clasp` loop text.
    pub loop_text: String,
    /// `.machine` machine text.
    pub machine_text: String,
    /// Compile with the exact SAT backend instead of the heuristic.
    pub exact: bool,
}

/// One scheduled request: the pre-rendered wire body and its class.
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Request class (for per-class accounting).
    pub class: ReqClass,
    /// Frame body to send.
    pub wire: String,
}

/// How to build a schedule.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Which mix to draw from.
    pub mix: Mix,
    /// Number of requests in the schedule.
    pub requests: usize,
    /// Seed for the hot pool — shared across cells so every cell's hot
    /// requests hit the same loops.
    pub pool_seed: u64,
    /// Seed for the cold stream and the class draw — unique per cell so
    /// no two cells share a "cold" loop.
    pub cell_seed: u64,
    /// Directory of fuzz-mined `hard-*.clasp`/`.machine` pairs; `None`
    /// (or an empty/missing directory) degrades hard/exact draws to hot.
    pub hard_dir: Option<PathBuf>,
}

/// Loops in the hot pool. Small enough that every pool member recurs
/// many times in a few hundred requests, large enough to exercise more
/// than one cache line of the memory tier.
pub const HOT_POOL_LOOPS: usize = 12;

/// A built schedule: the request stream plus the distinct hot wires
/// (for cache pre-warming) and per-class counts.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The request stream, in replay order.
    pub requests: Vec<LoadRequest>,
    /// Every distinct hot wire (issue once, untimed, to warm the cache
    /// before a hot or mixed run).
    pub hot_wires: Vec<String>,
    /// Number of hard pairs found on disk (0 = hard/exact degraded to
    /// hot).
    pub hard_pool: usize,
    /// Requests per class, indexed by [`ReqClass::index`].
    pub class_counts: [usize; 4],
}

/// Read the committed hard-instance corpus: sorted `*.clasp` files with
/// a sibling `*.machine`. Missing directory or no pairs is an empty
/// pool, not an error — the schedule degrades deterministically.
fn read_hard_pairs(dir: &Path) -> Vec<(String, String)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "clasp"))
        .collect();
    paths.sort();
    let mut pairs = Vec::new();
    for p in paths {
        let machine = p.with_extension("machine");
        if let (Ok(l), Ok(m)) = (
            std::fs::read_to_string(&p),
            std::fs::read_to_string(&machine),
        ) {
            pairs.push((l, m));
        }
    }
    pairs
}

/// Build the deterministic request schedule for one cell.
///
/// `render` turns a [`CaseSpec`] into the wire frame body (the root
/// crate binds this to `ServiceRequest::render`).
pub fn build_schedule(config: &MixConfig, render: impl Fn(&CaseSpec) -> String) -> Schedule {
    let machine_text = clasp_text::write_machine(&clasp_machine::presets::four_cluster_gp(4, 2));
    let case = |loop_text: String, exact: bool| CaseSpec {
        loop_text,
        machine_text: machine_text.clone(),
        exact,
    };

    // Hot pool: a small corpus from the pool seed, rendered once.
    let pool = generate_corpus(CorpusConfig {
        loops: HOT_POOL_LOOPS,
        scc_loops: HOT_POOL_LOOPS / 4,
        seed: config.pool_seed,
    });
    let hot_wires: Vec<String> = pool
        .iter()
        .map(|g| render(&case(clasp_text::write_loop(g), false)))
        .collect();

    // Hard pairs: committed corpus, rendered for both backends.
    let hard_pairs = config
        .hard_dir
        .as_deref()
        .map(read_hard_pairs)
        .unwrap_or_default();
    let hard_wires: Vec<String> = hard_pairs
        .iter()
        .map(|(l, m)| {
            render(&CaseSpec {
                loop_text: l.clone(),
                machine_text: m.clone(),
                exact: false,
            })
        })
        .collect();
    let exact_wires: Vec<String> = hard_pairs
        .iter()
        .map(|(l, m)| {
            render(&CaseSpec {
                loop_text: l.clone(),
                machine_text: m.clone(),
                exact: true,
            })
        })
        .collect();

    // Cold stream: unique loops from the stratified stream API, drawn
    // from the cell's own stratum. The stream seed FNV-folds the cell
    // seed, the "cold" role, *and* the stratum name — the old
    // `cell_seed ^ CONST` derivation let a cold stream alias another
    // role's stream whenever two cell seeds differed by the XOR of the
    // role constants, and folded no stratum at all.
    let stratum = Stratum::SYNTHETIC
        [(fold_seed(config.cell_seed, "cold-stratum") % Stratum::SYNTHETIC.len() as u64) as usize];
    let mut cold = LoopStream::new(stratum, config.cell_seed, "cold");
    let mut next_cold = move || render(&case(clasp_text::write_loop(&cold.next_loop()), false));

    let mut draw_rng = Rng::seed_from_u64(fold_seed(config.cell_seed, "draw"));
    let mut requests = Vec::with_capacity(config.requests);
    let mut class_counts = [0usize; 4];
    for _ in 0..config.requests {
        let class = match config.mix {
            Mix::Hot => ReqClass::Hot,
            Mix::Cold => ReqClass::Cold,
            Mix::Mixed => match draw_rng.below(100) {
                0..=69 => ReqClass::Hot,
                70..=89 => ReqClass::Cold,
                90..=95 => ReqClass::Hard,
                _ => ReqClass::Exact,
            },
        };
        // Hard/exact degrade to hot when the corpus is absent, keeping
        // the schedule total (and determinism) intact.
        let (class, wire) = match class {
            ReqClass::Hot => (
                ReqClass::Hot,
                hot_wires[draw_rng.below(hot_wires.len())].clone(),
            ),
            ReqClass::Cold => (ReqClass::Cold, next_cold()),
            ReqClass::Hard if !hard_wires.is_empty() => (
                ReqClass::Hard,
                hard_wires[draw_rng.below(hard_wires.len())].clone(),
            ),
            ReqClass::Exact if !exact_wires.is_empty() => (
                ReqClass::Exact,
                exact_wires[draw_rng.below(exact_wires.len())].clone(),
            ),
            _ => (
                ReqClass::Hot,
                hot_wires[draw_rng.below(hot_wires.len())].clone(),
            ),
        };
        class_counts[class.index()] += 1;
        requests.push(LoadRequest { class, wire });
    }

    Schedule {
        requests,
        hot_wires,
        hard_pool: hard_pairs.len(),
        class_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(case: &CaseSpec) -> String {
        format!(
            "exact={} machine={} loop={}",
            case.exact,
            case.machine_text.len(),
            case.loop_text
        )
    }

    fn config(mix: Mix) -> MixConfig {
        MixConfig {
            mix,
            requests: 200,
            pool_seed: 7,
            cell_seed: 11,
            hard_dir: None,
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let a = build_schedule(&config(Mix::Mixed), render);
        let b = build_schedule(&config(Mix::Mixed), render);
        assert_eq!(a.requests.len(), 200);
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.wire, y.wire);
        }
        assert_eq!(a.class_counts, b.class_counts);
    }

    #[test]
    fn hot_mix_draws_only_from_the_pool() {
        let s = build_schedule(&config(Mix::Hot), render);
        assert_eq!(s.class_counts, [200, 0, 0, 0]);
        for r in &s.requests {
            assert!(s.hot_wires.contains(&r.wire));
        }
    }

    #[test]
    fn cold_mix_never_repeats_a_wire() {
        let s = build_schedule(&config(Mix::Cold), render);
        assert_eq!(s.class_counts, [0, 200, 0, 0]);
        let mut seen = std::collections::HashSet::new();
        for r in &s.requests {
            assert!(seen.insert(r.wire.clone()), "cold wire repeated");
        }
    }

    #[test]
    fn different_cell_seeds_produce_disjoint_cold_streams() {
        let a = build_schedule(&config(Mix::Cold), render);
        let mut cfg = config(Mix::Cold);
        cfg.cell_seed = 12;
        let b = build_schedule(&cfg, render);
        let a_set: std::collections::HashSet<_> = a.requests.iter().map(|r| &r.wire).collect();
        assert!(b.requests.iter().all(|r| !a_set.contains(&r.wire)));
        // Same pool seed: identical hot pools either way.
        assert_eq!(a.hot_wires, b.hot_wires);
    }

    #[test]
    fn xor_colliding_cell_seeds_stay_disjoint() {
        // Under the old `cell_seed ^ CONST` derivation these two cells
        // aliased: their seeds differ by exactly the XOR of the cold and
        // draw role constants, so one cell's cold stream replayed the
        // other's class-draw stream. The FNV fold keeps every stream of
        // both cells disjoint.
        let mut ca = config(Mix::Cold);
        ca.cell_seed = 0x1111;
        let mut cb = config(Mix::Cold);
        cb.cell_seed = 0x1111 ^ 0xC01D_C01D_C01D_C01D ^ 0xD4A3_D4A3_D4A3_D4A3;
        let a = build_schedule(&ca, render);
        let b = build_schedule(&cb, render);
        let a_set: std::collections::HashSet<_> = a.requests.iter().map(|r| &r.wire).collect();
        assert!(b.requests.iter().all(|r| !a_set.contains(&r.wire)));
    }

    #[test]
    fn mixed_degrades_hard_to_hot_without_a_corpus() {
        let s = build_schedule(&config(Mix::Mixed), render);
        assert_eq!(s.hard_pool, 0);
        assert_eq!(s.class_counts[ReqClass::Hard.index()], 0);
        assert_eq!(s.class_counts[ReqClass::Exact.index()], 0);
        assert!(s.class_counts[ReqClass::Hot.index()] > 100);
        assert!(s.class_counts[ReqClass::Cold.index()] > 20);
    }

    #[test]
    fn mixed_uses_the_hard_corpus_when_present() {
        let dir = std::env::temp_dir().join(format!("clasp-load-hard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("hard-0001.clasp"), "loop h\n\nop n0 alu\n").unwrap();
        std::fs::write(dir.join("hard-0001.machine"), "machine m\ncluster 1gp\n").unwrap();
        // A .clasp without its .machine sibling is skipped.
        std::fs::write(dir.join("hard-0002.clasp"), "loop orphan\n\nop n0 alu\n").unwrap();
        let mut cfg = config(Mix::Mixed);
        cfg.hard_dir = Some(dir.clone());
        let s = build_schedule(&cfg, render);
        assert_eq!(s.hard_pool, 1);
        assert!(s.class_counts[ReqClass::Hard.index()] > 0);
        assert!(s.class_counts[ReqClass::Exact.index()] > 0);
        let exact = s
            .requests
            .iter()
            .find(|r| r.class == ReqClass::Exact)
            .unwrap();
        assert!(exact.wire.starts_with("exact=true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
