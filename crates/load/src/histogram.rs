//! A fixed-bucket log-linear latency histogram.
//!
//! Every recorded nanosecond value lands in exactly one of a fixed set
//! of buckets — no sampling, no reservoir, no decay — so two runs that
//! observe the same latencies produce bit-identical histograms and the
//! recorded distribution is mergeable across worker threads by plain
//! bucket-wise addition.
//!
//! The bucket layout is log-linear (the HdrHistogram idea, sized for
//! `u64` nanoseconds): values below 2^[`SUB_BITS`] get one bucket each;
//! above that, every power-of-two octave is split into 2^[`SUB_BITS`]
//! equal sub-buckets. Relative quantization error is bounded by
//! 2^-[`SUB_BITS`] (about 3%), which is far below run-to-run latency
//! noise, and the whole table is ~1.9k buckets — small enough to sit in
//! every worker thread and merge at the end.

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

const SUB: u64 = 1 << SUB_BITS;

/// Number of buckets needed to cover all of `u64`.
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// Bucket index for a nanosecond value. Total order preserving:
/// `a <= b` implies `bucket_of(a) <= bucket_of(b)`.
fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let octave = 63 - u64::from(ns.leading_zeros());
    let shift = octave - u64::from(SUB_BITS);
    ((octave - u64::from(SUB_BITS) + 1) * SUB + (ns >> shift) - SUB) as usize
}

/// Inclusive upper bound of a bucket (the value a percentile reports).
fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let octave = (index / SUB) + u64::from(SUB_BITS) - 1;
    let sub = index % SUB;
    let shift = octave - u64::from(SUB_BITS);
    // Highest value whose top SUB_BITS+1 bits match this sub-bucket.
    // The very top bucket's exclusive bound is 2^64: the wrapping
    // arithmetic turns it into u64::MAX exactly.
    (SUB + sub + 1).wrapping_shl(shift as u32).wrapping_sub(1)
}

/// The histogram: fixed bucket counts plus exact min/max/sum/total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    /// Record one latency.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns += u128::from(ns);
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns += other.sum_ns;
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of the recorded values (exact, not bucketed; 0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.total)) as u64
        }
    }

    /// The latency at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * total)`,
    /// clamped to the exact recorded maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max_ns).max(self.min_ns);
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        let mut prev = 0usize;
        for ns in (0..2048u64).chain((0..54).map(|i| 1u64 << i)) {
            let b = bucket_of(ns);
            assert!(b >= prev || ns < 2048, "bucket order broken at {ns}");
            assert!(
                bucket_high(b) >= ns,
                "value {ns} above its bucket bound {}",
                bucket_high(b)
            );
            // The bound itself must land in the same bucket.
            assert_eq!(bucket_of(bucket_high(b)), b, "bound escapes bucket at {ns}");
            prev = b.max(prev);
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantization_error_is_bounded() {
        for ns in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let mut h = Histogram::new();
            h.record(ns);
            let p = h.percentile(0.5);
            assert!(p >= ns, "percentile below recorded value");
            assert!(
                (p - ns) as f64 <= ns as f64 / SUB as f64 + 1.0,
                "error too large: {ns} -> {p}"
            );
        }
    }

    #[test]
    fn percentiles_on_a_known_distribution() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1us .. 1ms, uniform
        }
        assert_eq!(h.total(), 1000);
        assert_eq!(h.min_ns(), 1000);
        assert_eq!(h.max_ns(), 1_000_000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!((450_000..=550_000).contains(&p50), "p50 = {p50}");
        assert!((950_000..=1_000_000).contains(&p99), "p99 = {p99}");
        assert!(p999 >= p99, "p999 {p999} below p99 {p99}");
        assert!(h.mean_ns() > 490_000 && h.mean_ns() < 510_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500u64 {
            let v = (i * 7919) % 100_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
    }
}
