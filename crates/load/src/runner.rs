//! The load runner: replay one schedule at a given client concurrency,
//! closed- or open-loop, recording per-request latency into fixed-bucket
//! histograms.
//!
//! Transports are injected: a *client* is any `FnMut(&str) ->
//! Result<ReplyOutcome, String>` (wire body in, classified reply out),
//! and the runner asks the `make_client` factory for one per worker
//! thread. The root crate binds factories for the in-process
//! `CompileService` and for TCP connections to a `clasp-serve` daemon.
//!
//! **Closed loop**: each worker sends its next request as soon as the
//! previous reply lands — latency is pure service time, throughput is
//! whatever the system sustains. **Open loop** (`rate > 0`): request
//! `i` of the schedule is *due* at `start + i/rate`, workers sleep
//! until a request is due, and latency is measured **from the due
//! time** — so queueing delay under overload is part of the number, as
//! it is for a real user.

use crate::histogram::Histogram;
use crate::mix::LoadRequest;
use clasp_obs::Obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How a reply was classified by the injected client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// Healthy reply carrying an artifact payload.
    Ok,
    /// Healthy reply carrying a typed pipeline failure (e.g. the exact
    /// backend's `Budget`) — a valid answer, not a load error.
    PipelineFailure,
}

/// Runner knobs for one cell.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Concurrent client workers.
    pub clients: usize,
    /// Open-loop arrival rate in requests/second across all clients;
    /// `0.0` selects the closed loop.
    pub rate: f64,
}

/// The measured result of one cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Requests attempted (schedule length).
    pub requests: u64,
    /// Transport or protocol failures (send error, unparseable reply,
    /// `bad-request`). A healthy run has zero.
    pub errors: u64,
    /// Replies carrying a typed pipeline failure.
    pub pipeline_failures: u64,
    /// Wall-clock time of the whole cell, ns.
    pub wall_ns: u64,
    /// Latency over every successful request.
    pub overall: Histogram,
    /// Latency split by request class, indexed by [`ReqClass::index`].
    pub by_class: [Histogram; 4],
}

impl CellReport {
    /// Sustained throughput in requests/second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.requests - self.errors) as f64 / (self.wall_ns as f64 / 1e9)
    }
}

struct WorkerResult {
    overall: Histogram,
    by_class: [Histogram; 4],
    errors: u64,
    pipeline_failures: u64,
}

/// Replay `schedule` on `config.clients` workers.
///
/// `make_client` runs once per worker, inside that worker's thread; a
/// factory error fails the whole cell (a load run against a dead
/// daemon is a setup problem, not a tail-latency fact).
///
/// Every request records one `load.request` span into `obs` (class and
/// schedule index attached), so a `--trace-json` of a load run is
/// Perfetto-loadable like every other trace this workspace writes.
///
/// # Errors
///
/// The first worker's client-factory error, verbatim.
pub fn run_cell<C>(
    schedule: &[LoadRequest],
    config: &RunConfig,
    obs: &Obs,
    make_client: impl Fn(usize) -> Result<C, String> + Sync,
) -> Result<CellReport, String>
where
    C: FnMut(&str) -> Result<ReplyOutcome, String>,
{
    let clients = config.clients.max(1);
    let cursor = AtomicUsize::new(0);
    let ns_per_request = if config.rate > 0.0 {
        Some((1e9 / config.rate) as u64)
    } else {
        None
    };

    let cell_start = Instant::now();
    let results: Vec<Result<WorkerResult, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for worker in 0..clients {
            let cursor = &cursor;
            let make_client = &make_client;
            handles.push(scope.spawn(move || {
                let mut client = make_client(worker)?;
                let mut out = WorkerResult {
                    overall: Histogram::new(),
                    by_class: std::array::from_fn(|_| Histogram::new()),
                    errors: 0,
                    pipeline_failures: 0,
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = schedule.get(i) else { break };
                    // Open loop: wait for the request's due time; the
                    // latency clock starts there, so time spent queued
                    // behind a slow system is charged to the request.
                    let due = ns_per_request.map(|step| {
                        let due = cell_start + Duration::from_nanos(step * i as u64);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        due
                    });
                    let span = obs.begin("load.request");
                    let sent = Instant::now();
                    let outcome = client(&req.wire);
                    let done = Instant::now();
                    obs.end_with(span, || {
                        vec![
                            ("class", req.class.name().to_string()),
                            ("index", i.to_string()),
                        ]
                    });
                    match outcome {
                        Ok(kind) => {
                            let from = match due {
                                Some(due) => done.saturating_duration_since(due),
                                None => done.saturating_duration_since(sent),
                            };
                            let ns = from.as_nanos().min(u128::from(u64::MAX)) as u64;
                            out.overall.record(ns);
                            out.by_class[req.class.index()].record(ns);
                            if kind == ReplyOutcome::PipelineFailure {
                                out.pipeline_failures += 1;
                            }
                        }
                        Err(_) => out.errors += 1,
                    }
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let wall_ns = cell_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

    let mut report = CellReport {
        requests: schedule.len() as u64,
        errors: 0,
        pipeline_failures: 0,
        wall_ns,
        overall: Histogram::new(),
        by_class: std::array::from_fn(|_| Histogram::new()),
    };
    for r in results {
        let r = r?;
        report.overall.merge(&r.overall);
        for (into, from) in report.by_class.iter_mut().zip(&r.by_class) {
            into.merge(from);
        }
        report.errors += r.errors;
        report.pipeline_failures += r.pipeline_failures;
    }
    Ok(report)
}

/// Issue every wire in `wires` once through a fresh client — the
/// untimed warm-up pass hot/mixed cells run so hot requests measure the
/// cache-hit floor, not first-compile cost.
///
/// # Errors
///
/// The client-factory error or the first send error, verbatim.
pub fn prewarm<C>(
    wires: &[String],
    make_client: impl Fn(usize) -> Result<C, String>,
) -> Result<(), String>
where
    C: FnMut(&str) -> Result<ReplyOutcome, String>,
{
    let mut client = make_client(0)?;
    for wire in wires {
        client(wire).map_err(|e| format!("prewarm: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::ReqClass;

    fn schedule(n: usize) -> Vec<LoadRequest> {
        (0..n)
            .map(|i| LoadRequest {
                class: if i % 2 == 0 {
                    ReqClass::Hot
                } else {
                    ReqClass::Cold
                },
                wire: format!("req-{i}"),
            })
            .collect()
    }

    #[test]
    fn closed_loop_covers_every_request_once() {
        let sched = schedule(100);
        let counted = AtomicUsize::new(0);
        let report = run_cell(
            &sched,
            &RunConfig {
                clients: 4,
                rate: 0.0,
            },
            &Obs::disabled(),
            |_| {
                let counted = &counted;
                Ok(move |_wire: &str| {
                    counted.fetch_add(1, Ordering::Relaxed);
                    Ok(ReplyOutcome::Ok)
                })
            },
        )
        .unwrap();
        assert_eq!(counted.load(Ordering::Relaxed), 100);
        assert_eq!(report.requests, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.overall.total(), 100);
        assert_eq!(report.by_class[ReqClass::Hot.index()].total(), 50);
        assert_eq!(report.by_class[ReqClass::Cold.index()].total(), 50);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn errors_and_pipeline_failures_are_counted_apart() {
        let sched = schedule(90);
        let report = run_cell(
            &sched,
            &RunConfig {
                clients: 3,
                rate: 0.0,
            },
            &Obs::disabled(),
            |_| {
                Ok(|wire: &str| {
                    let i: usize = wire["req-".len()..].parse().unwrap();
                    match i % 3 {
                        0 => Ok(ReplyOutcome::Ok),
                        1 => Ok(ReplyOutcome::PipelineFailure),
                        _ => Err("boom".to_string()),
                    }
                })
            },
        )
        .unwrap();
        assert_eq!(report.errors, 30);
        assert_eq!(report.pipeline_failures, 30);
        assert_eq!(report.overall.total(), 60);
    }

    #[test]
    fn open_loop_charges_queueing_delay() {
        // A service that takes ~2ms per request under a 4ms-per-request
        // schedule keeps up: latency stays near service time. The same
        // service under open loop with an impossible rate accumulates
        // queueing delay: later requests measure much more than 2ms.
        let sched = schedule(20);
        let slow = |_: usize| {
            Ok(|_wire: &str| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(ReplyOutcome::Ok)
            })
        };
        let keeping_up = run_cell(
            &sched,
            &RunConfig {
                clients: 1,
                rate: 250.0,
            },
            &Obs::disabled(),
            slow,
        )
        .unwrap();
        let overloaded = run_cell(
            &sched,
            &RunConfig {
                clients: 1,
                rate: 100_000.0,
            },
            &Obs::disabled(),
            slow,
        )
        .unwrap();
        // Assert on the median, not the tail: one OS scheduler stall
        // under a parallel test run can push a lone request past any
        // absolute tail bound, but it cannot move the median of 20.
        assert!(
            keeping_up.overall.percentile(0.50) < 10_000_000,
            "keeping-up p50 {} should be near the 2ms service time",
            keeping_up.overall.percentile(0.50)
        );
        // 20 requests all due at ~t=0 through a 2ms server: the median
        // request waits ~18ms and the last ~38ms — queueing delay, not
        // noise, so stalls can only push these further up.
        assert!(
            overloaded.overall.percentile(0.50) > 10_000_000,
            "overloaded p50 {} should include queueing delay",
            overloaded.overall.percentile(0.50)
        );
        assert!(
            overloaded.overall.percentile(0.99) > 20_000_000,
            "overloaded p99 {} should include queueing delay",
            overloaded.overall.percentile(0.99)
        );
    }

    #[test]
    fn factory_failure_fails_the_cell() {
        type Client = fn(&str) -> Result<ReplyOutcome, String>;
        let sched = schedule(4);
        let out = run_cell(
            &sched,
            &RunConfig {
                clients: 2,
                rate: 0.0,
            },
            &Obs::disabled(),
            |_| -> Result<Client, String> { Err("no daemon".into()) },
        );
        assert_eq!(out.unwrap_err(), "no daemon");
    }
}
