//! Structured observability for the CLASP pipeline: spans, typed
//! counters, and events, with no dependencies outside `std`.
//!
//! # Design contract
//!
//! - **One sink for everything.** The driver's stage timings, the
//!   escalation loop's per-attempt records, the scheduler's conflict
//!   statistics, the assigner's decision log, and the executor's
//!   per-worker accounting all land in one [`Obs`], so a single trace
//!   explains *where* an II attempt died and *why*.
//! - **Disabled means free.** [`Obs::disabled`] records nothing and
//!   allocates nothing: [`Obs::begin`] only reads the monotonic clock
//!   (so [`Obs::end`] still returns a usable [`Duration`] for callers
//!   that feed timing reports), counters are skipped, and the lazy
//!   closures handed to [`Obs::event`] and [`Obs::end_with`] are never
//!   invoked. The `alloc_free` integration test pins this with a
//!   counting global allocator.
//! - **Counters are deterministic; span args are not.** Anything folded
//!   into a [`Counter`] must be independent of thread count and timing
//!   (attempt counts, conflict counts, cache hits/misses). Wall-clock
//!   durations, per-worker item distribution, and steal contention are
//!   inherently racy and are only ever recorded as span attributes.
//!   The CI determinism gate compares counter totals across thread
//!   counts byte-for-byte.
//!
//! # Output
//!
//! [`Obs::chrome_trace`] serializes the record as Chrome trace-event
//! JSON (loadable in `chrome://tracing` or Perfetto), with an extra
//! top-level `"counters"` object holding the deterministic totals.
//! [`Obs::render`] produces the human-readable span tree with counters
//! inline — the `--explain` view.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// The typed counter catalogue. Every counter is deterministic: its
/// total depends only on the work performed, never on thread count,
/// scheduling order, or wall-clock time (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Escalation attempts made by the Figure-5 pipeline loop
    /// (assign + schedule pairs, successful or not).
    PipelineAttempts,
    /// Copies live in the working graphs produced by assignment
    /// attempts, summed over attempts.
    AssignCopies,
    /// Assigner decision-log events (feasibility checks, selections,
    /// forced placements, removals) wrapped into the obs stream.
    AssignEvents,
    /// Scheduling attempts (one per II the scheduler tried).
    SchedAttempts,
    /// Operations placed by the scheduler, including re-placements
    /// after eviction.
    SchedPlacements,
    /// Scheduler backtracks: evictions plus successor displacements —
    /// every time committed work was undone to make room.
    SchedBacktracks,
    /// Forced placements after a full conflict-free window scan failed.
    SchedWindowRejections,
    /// MRT conflicts on memory-class FUs (a candidate slot was busy).
    SchedConflictMemory,
    /// MRT conflicts on integer-class FUs.
    SchedConflictInteger,
    /// MRT conflicts on float-class FUs.
    SchedConflictFloat,
    /// MRT conflicts on the transport layer (copy ops vs. buses/links).
    SchedConflictTransport,
    /// Items completed by executor sweeps (the work count, not the
    /// per-worker distribution — that lives in span args).
    ExecItems,
    /// Compile-cache hits served by the in-memory tier.
    CacheHits,
    /// Compile-cache misses (exactly one per unique key, by the cache's
    /// contention contract).
    CacheMisses,
    /// Compile-cache lookups served by decoding a persisted payload
    /// from the disk tier.
    CacheDiskHits,
    /// Disk-tier failures (truncated/corrupt shard files, I/O errors,
    /// undecodable payloads) — each degraded to a miss, never a panic.
    CacheDiskErrors,
    /// Disk-tier payloads promoted into the in-memory tier.
    CachePromotions,
    /// In-memory entries removed by the byte-budget eviction policy.
    CacheEvictions,
}

impl Counter {
    /// Every counter, in catalogue order.
    pub const ALL: [Counter; 18] = [
        Counter::PipelineAttempts,
        Counter::AssignCopies,
        Counter::AssignEvents,
        Counter::SchedAttempts,
        Counter::SchedPlacements,
        Counter::SchedBacktracks,
        Counter::SchedWindowRejections,
        Counter::SchedConflictMemory,
        Counter::SchedConflictInteger,
        Counter::SchedConflictFloat,
        Counter::SchedConflictTransport,
        Counter::ExecItems,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheDiskHits,
        Counter::CacheDiskErrors,
        Counter::CachePromotions,
        Counter::CacheEvictions,
    ];

    /// The stable dotted name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PipelineAttempts => "pipeline.attempts",
            Counter::AssignCopies => "assign.copies",
            Counter::AssignEvents => "assign.events",
            Counter::SchedAttempts => "sched.attempts",
            Counter::SchedPlacements => "sched.placements",
            Counter::SchedBacktracks => "sched.backtracks",
            Counter::SchedWindowRejections => "sched.window_rejections",
            Counter::SchedConflictMemory => "sched.conflict.memory",
            Counter::SchedConflictInteger => "sched.conflict.integer",
            Counter::SchedConflictFloat => "sched.conflict.float",
            Counter::SchedConflictTransport => "sched.conflict.transport",
            Counter::ExecItems => "exec.items",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheDiskHits => "cache.disk_hits",
            Counter::CacheDiskErrors => "cache.disk_errors",
            Counter::CachePromotions => "cache.promotions",
            Counter::CacheEvictions => "cache.evictions",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One finished span: a named, timed interval on one thread, with
/// optional string attributes. Timestamps are nanoseconds since the
/// [`Obs`] was created — full clock resolution, so containment never
/// ties at a truncation boundary; nesting is recovered from containment
/// (spans on one thread are well nested because [`Span`] begin/end
/// bracket call scopes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static, dotted: `"stage.assign_sched"`).
    pub name: &'static str,
    /// Small integer id of the recording thread (0 = first thread seen).
    pub tid: u32,
    /// Start, ns since the sink's epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Attributes attached at [`Obs::end_with`] time.
    pub args: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// End of the span, ns since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// One instant event (a point, not an interval) — e.g. a wrapped
/// assigner decision-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Small integer id of the recording thread.
    pub tid: u32,
    /// Timestamp, ns since the sink's epoch.
    pub ts_ns: u64,
    /// Free-form detail string.
    pub detail: String,
}

/// Render `ns` as fractional microseconds (`"123.456"`) — the unit
/// Chrome trace-event timestamps use.
fn ns_as_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// An open span, closed by [`Obs::end`] / [`Obs::end_with`]. Always
/// carries the start instant, so `end` returns the elapsed [`Duration`]
/// even on a disabled sink — callers keep one code path for timing.
#[must_use = "a span is recorded when passed back to Obs::end"]
pub struct Span {
    name: &'static str,
    start: Instant,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: [u64; Counter::ALL.len()],
    threads: Vec<ThreadId>,
}

impl State {
    fn tid(&mut self, id: ThreadId) -> u32 {
        if let Some(i) = self.threads.iter().position(|&t| t == id) {
            return i as u32;
        }
        self.threads.push(id);
        (self.threads.len() - 1) as u32
    }
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The observability sink. Thread-safe: one `Obs` is shared by
/// reference across executor workers. Construct with [`Obs::enabled`]
/// to record or [`Obs::disabled`] for the zero-cost no-op (see the
/// module docs for the disabled-path contract).
pub struct Obs {
    inner: Option<Inner>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl Obs {
    /// A recording sink. The moment of creation is the trace epoch.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The no-op sink: records nothing, allocates nothing.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this sink records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. Reads the monotonic clock and nothing else — free
    /// of allocation whether or not the sink records.
    pub fn begin(&self, name: &'static str) -> Span {
        Span {
            name,
            start: Instant::now(),
        }
    }

    /// Close a span, returning its duration. Recorded only on an
    /// enabled sink; the duration comes back either way.
    pub fn end(&self, span: Span) -> Duration {
        self.end_with(span, Vec::new)
    }

    /// Close a span with lazily built attributes. `args` runs only on
    /// an enabled sink (the disabled path stays allocation-free).
    pub fn end_with(
        &self,
        span: Span,
        args: impl FnOnce() -> Vec<(&'static str, String)>,
    ) -> Duration {
        let elapsed = span.start.elapsed();
        if let Some(inner) = &self.inner {
            let start_ns = span.start.saturating_duration_since(inner.epoch).as_nanos() as u64;
            let record = SpanRecord {
                name: span.name,
                tid: 0,
                start_ns,
                dur_ns: elapsed.as_nanos() as u64,
                args: args(),
            };
            let mut state = inner.state.lock().expect("obs state");
            let tid = state.tid(std::thread::current().id());
            state.spans.push(SpanRecord { tid, ..record });
        }
        elapsed
    }

    /// Record an instant event. `detail` runs only on an enabled sink.
    pub fn event(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
            let detail = detail();
            let mut state = inner.state.lock().expect("obs state");
            let tid = state.tid(std::thread::current().id());
            state.events.push(EventRecord {
                name,
                tid,
                ts_ns,
                detail,
            });
        }
    }

    /// Add `n` to a counter. No-op on a disabled sink.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("obs state");
            state.counters[counter.index()] += n;
        }
    }

    /// Current value of one counter (0 on a disabled sink).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("obs state").counters[counter.index()],
            None => 0,
        }
    }

    /// Snapshot of every counter in catalogue order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let values = match &self.inner {
            Some(inner) => inner.state.lock().expect("obs state").counters,
            None => [0; Counter::ALL.len()],
        };
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), values[c.index()]))
            .collect()
    }

    /// Snapshot of every finished span, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("obs state").spans.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of every event, in record order.
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("obs state").events.clone(),
            None => Vec::new(),
        }
    }

    /// Serialize as Chrome trace-event JSON: a `"traceEvents"` array of
    /// `"X"` (complete) and `"i"` (instant) events — loadable in
    /// `chrome://tracing` and Perfetto — plus a top-level `"counters"`
    /// object with the deterministic totals in catalogue order. Only
    /// the counters object is byte-stable across thread counts;
    /// timestamps and event interleavings are not.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [\n");
        let mut first = true;
        for s in self.spans() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{",
                json_string(s.name),
                s.tid,
                ns_as_us(s.start_ns),
                ns_as_us(s.dur_ns)
            ));
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
        for e in self.events() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": {}, \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"args\": {{\"detail\": {}}}}}",
                json_string(e.name),
                e.tid,
                ns_as_us(e.ts_ns),
                json_string(&e.detail)
            ));
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"counters\": {\n");
        for (i, (name, value)) in self.counters().into_iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("  {}: {}", json_string(name), value));
        }
        out.push_str("\n}\n}\n");
        out
    }

    /// Render the span tree (nesting recovered from containment, one
    /// tree per thread) with nonzero counters appended — the
    /// `--explain` view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut spans = self.spans();
        // Containment sort: outer spans first at equal start.
        spans.sort_by(|a, b| {
            (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
                b.tid,
                b.start_ns,
                std::cmp::Reverse(b.dur_ns),
            ))
        });
        let mut stack: Vec<(u32, u64)> = Vec::new(); // (tid, end_ns)
        for s in &spans {
            while let Some(&(tid, end)) = stack.last() {
                if tid != s.tid || s.start_ns >= end {
                    stack.pop();
                } else {
                    break;
                }
            }
            out.push_str(&"  ".repeat(stack.len()));
            out.push_str(s.name);
            for (k, v) in &s.args {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push_str(&format!("  [{} µs]\n", s.dur_ns / 1_000));
            stack.push((s.tid, s.end_ns()));
        }
        let nonzero: Vec<_> = self
            .counters()
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        if !nonzero.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in nonzero {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        out
    }
}

/// Escape a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_but_still_times() {
        let obs = Obs::disabled();
        let span = obs.begin("work");
        std::thread::sleep(Duration::from_millis(1));
        let dur = obs.end(span);
        assert!(dur >= Duration::from_millis(1));
        obs.add(Counter::CacheHits, 3);
        obs.event("never", || {
            unreachable!("lazy closure ran on disabled sink")
        });
        assert!(obs.spans().is_empty());
        assert!(obs.events().is_empty());
        assert_eq!(obs.counter(Counter::CacheHits), 0);
    }

    #[test]
    fn span_nesting_and_timing_are_monotonic() {
        let obs = Obs::enabled();
        let outer = obs.begin("outer");
        let inner = obs.begin("inner");
        std::thread::sleep(Duration::from_millis(1));
        obs.end(inner);
        obs.end(outer);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        let (i, o) = (&spans[0], &spans[1]);
        assert_eq!((i.name, o.name), ("inner", "outer"));
        assert!(o.start_ns <= i.start_ns, "outer starts first");
        assert!(o.end_ns() >= i.end_ns(), "outer contains inner");
        let rendered = obs.render();
        let outer_at = rendered.find("outer").unwrap();
        let inner_at = rendered.find("  inner").unwrap();
        assert!(
            outer_at < inner_at,
            "tree shows outer above nested inner:\n{rendered}"
        );
    }

    #[test]
    fn counters_accumulate_and_list_in_catalogue_order() {
        let obs = Obs::enabled();
        obs.add(Counter::SchedBacktracks, 2);
        obs.add(Counter::SchedBacktracks, 3);
        obs.add(Counter::CacheMisses, 1);
        assert_eq!(obs.counter(Counter::SchedBacktracks), 5);
        let all = obs.counters();
        assert_eq!(all.len(), Counter::ALL.len());
        let names: Vec<_> = all.iter().map(|&(n, _)| n).collect();
        assert_eq!(names[0], "pipeline.attempts");
        assert!(all.contains(&("sched.backtracks", 5)));
        assert!(all.contains(&("cache.misses", 1)));
    }

    #[test]
    fn counters_sum_across_threads() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        obs.add(Counter::ExecItems, 1);
                    }
                });
            }
        });
        assert_eq!(obs.counter(Counter::ExecItems), 400);
    }

    #[test]
    fn chrome_trace_shape() {
        let obs = Obs::enabled();
        let span = obs.begin("stage.assign_sched");
        obs.event("assign.select", || "node 3 -> cluster 1 \"quoted\"".into());
        obs.end_with(span, || vec![("requested_ii", "4".into())]);
        obs.add(Counter::PipelineAttempts, 1);
        let json = obs.chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"requested_ii\": \"4\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"pipeline.attempts\": 1"));
        assert!(json.contains("\"sched.backtracks\": 0"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn spans_carry_thread_ids() {
        let obs = Obs::enabled();
        let main = obs.begin("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let w = obs.begin("worker");
                obs.end(w);
            });
        });
        obs.end(main);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(
            spans[0].tid, spans[1].tid,
            "distinct threads get distinct tids"
        );
    }
}
