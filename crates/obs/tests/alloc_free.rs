//! Pins the disabled-path zero-cost contract: every operation on
//! [`Obs::disabled`] — opening and closing spans, bumping counters,
//! logging events — performs **zero** heap allocations, so leaving
//! instrumentation compiled into the hot pipeline costs nothing when no
//! one is watching.
//!
//! A counting global allocator wraps the system one; this file contains
//! a single test so no concurrent test can perturb the counter.

use clasp_obs::{Counter, Obs};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_path_is_allocation_free() {
    let obs = Obs::disabled();

    let before = allocs();
    for i in 0..1000u64 {
        let outer = obs.begin("outer");
        let inner = obs.begin("inner");
        obs.add(Counter::SchedBacktracks, i);
        obs.add(Counter::CacheHits, 1);
        obs.event("decision", || format!("lazy {i} never built"));
        let _ = obs.end_with(inner, || vec![("ii", i.to_string())]);
        let _ = obs.end(outer);
    }
    assert_eq!(
        allocs() - before,
        0,
        "disabled obs path touched the allocator"
    );

    // Sanity: the same sequence on an enabled sink does record (the
    // counting allocator is still active; we only assert behaviour).
    let enabled = Obs::enabled();
    let span = enabled.begin("s");
    enabled.add(Counter::CacheHits, 2);
    let _ = enabled.end(span);
    assert_eq!(enabled.counter(Counter::CacheHits), 2);
    assert_eq!(enabled.spans().len(), 1);
}
