//! Value lifetimes and register pressure of a modulo schedule.
//!
//! A value is live from its producer's issue cycle until the issue cycle
//! of its last consumer (loop-carried consumers extend the lifetime by
//! `distance * II`). Because iterations overlap, a lifetime longer than
//! II forces several instances of the value to be live at once — the
//! quantity *MaxLive* measures the worst-case simultaneous count, and
//! drives modulo variable expansion (see [`crate::MveInfo`]).

use clasp_ddg::{Ddg, NodeId};
use clasp_sched::Schedule;

/// The live range of one produced value, in schedule cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The producing node.
    pub def: NodeId,
    /// Issue cycle of the producer.
    pub start: i64,
    /// One past the last consuming issue cycle (at least
    /// `start + latency`); `end - start` is the register's occupancy.
    pub end: i64,
}

impl Lifetime {
    /// The lifetime's length in cycles.
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the lifetime is degenerate (never happens for produced
    /// values; present for `is_empty`/`len` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// How many instances of this value are simultaneously live in the
    /// steady state: `ceil(len / II)`.
    pub fn instances(&self, ii: u32) -> u32 {
        let ii = i64::from(ii);
        (self.len() + ii - 1).div_euclid(ii).max(1) as u32
    }
}

/// Compute the lifetime of every value-producing node of `g` under
/// `sched`.
///
/// Nodes whose kind produces no register value (stores, branches) are
/// skipped. A producer with no consumers still occupies its result for
/// `latency` cycles.
///
/// # Panics
///
/// Panics if some node of `g` is missing from `sched`.
pub fn lifetimes(g: &Ddg, sched: &Schedule) -> Vec<Lifetime> {
    let ii = i64::from(sched.ii());
    let mut out = Vec::new();
    for (n, op) in g.nodes() {
        if !op.kind.produces_value() {
            continue;
        }
        let start = sched.start(n).expect("node scheduled");
        let mut end = start + i64::from(op.kind.latency());
        for (_, e) in g.succ_edges(n) {
            if e.src == e.dst {
                continue;
            }
            let use_at =
                sched.start(e.dst).expect("consumer scheduled") + i64::from(e.distance) * ii;
            end = end.max(use_at);
        }
        out.push(Lifetime { def: n, start, end });
    }
    out
}

/// Register pressure of the schedule: the maximum number of
/// simultaneously live value instances over one steady-state II window
/// (the *MaxLive* metric of the stage-scheduling literature).
pub fn max_live(g: &Ddg, sched: &Schedule) -> u32 {
    let ii = i64::from(sched.ii());
    let mut buckets = vec![0u32; ii as usize];
    for lt in lifetimes(g, sched) {
        // Each cycle t in [start, end) contributes one live instance at
        // kernel row t mod II.
        for t in lt.start..lt.end {
            buckets[t.rem_euclid(ii) as usize] += 1;
        }
    }
    buckets.into_iter().max().unwrap_or(0)
}

/// The minimum number of registers modulo variable expansion needs:
/// the sum over values of `ceil(lifetime / II)`.
pub fn register_requirement(g: &Ddg, sched: &Schedule) -> u32 {
    lifetimes(g, sched)
        .iter()
        .map(|lt| lt.instances(sched.ii()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, SchedulerConfig};

    fn sched_of(g: &Ddg, width: u32) -> Schedule {
        let m = presets::unified_gp(width);
        schedule_unified(g, &m, SchedulerConfig::default()).expect("schedules")
    }

    #[test]
    fn chain_lifetimes_cover_latency() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load); // lat 2
        let b = g.add(OpKind::Store);
        g.add_dep(a, b);
        let s = sched_of(&g, 4);
        let lts = lifetimes(&g, &s);
        assert_eq!(lts.len(), 1); // store produces nothing
        let lt = lts[0];
        assert_eq!(lt.def, a);
        assert_eq!(lt.start, s.start(a).unwrap());
        assert_eq!(lt.end, s.start(b).unwrap());
        assert!(lt.len() >= 2);
    }

    #[test]
    fn unconsumed_value_lives_for_its_latency() {
        let mut g = Ddg::new("lone");
        let a = g.add(OpKind::FpMult); // lat 3
        let s = sched_of(&g, 4);
        let lt = lifetimes(&g, &s)[0];
        assert_eq!(lt.len(), 3);
        let _ = a;
    }

    #[test]
    fn carried_consumer_extends_lifetime() {
        // a -> b with distance 2 at II=1: lifetime spans 2 extra IIs.
        let mut g = Ddg::new("carried");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep_carried(a, b, 2);
        let s = sched_of(&g, 4);
        let lt = lifetimes(&g, &s).into_iter().find(|l| l.def == a).unwrap();
        let expect = s.start(b).unwrap() + 2 * i64::from(s.ii());
        assert_eq!(lt.end, expect.max(s.start(a).unwrap() + 1));
    }

    #[test]
    fn instances_is_ceil_len_over_ii() {
        let lt = Lifetime {
            def: NodeId(0),
            start: 0,
            end: 5,
        };
        assert_eq!(lt.instances(2), 3);
        assert_eq!(lt.instances(5), 1);
        assert_eq!(lt.instances(1), 5);
    }

    #[test]
    fn max_live_counts_overlap() {
        // Four independent loads at II=1 (width 4): each result lives 2
        // cycles -> 2 instances each, all rows loaded equally.
        let mut g = Ddg::new("loads");
        for _ in 0..4 {
            let l = g.add(OpKind::Load);
            let st = g.add(OpKind::Store);
            g.add_dep(l, st);
        }
        let s = sched_of(&g, 8);
        assert_eq!(s.ii(), 1);
        let ml = max_live(&g, &s);
        // 4 values, each >= 2 cycles long at II=1 -> at least 8 live.
        assert!(ml >= 8, "MaxLive {ml}");
        assert!(register_requirement(&g, &s) >= 8);
    }

    #[test]
    fn pressure_zero_for_storeless_graph() {
        let mut g = Ddg::new("stores");
        g.add(OpKind::Store);
        g.add(OpKind::Branch);
        let s = sched_of(&g, 4);
        assert_eq!(max_live(&g, &s), 0);
        assert_eq!(register_requirement(&g, &s), 0);
    }
}
