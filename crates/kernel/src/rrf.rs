//! Rotating register files (Rau et al., PLDI 1992; the Cydra 5 / Itanium
//! mechanism the paper's compiler substrate used).
//!
//! Where modulo variable expansion unrolls the kernel `U` times so each
//! unrolled copy can name its own register, a rotating register file
//! renames in *hardware*: each initiation decrements a rotating base, so
//! iteration `i`'s instance of a value lands at physical register
//! `(offset - i) mod R` with **no kernel unrolling at all**.
//!
//! Allocation follows the classic scheme: each value gets a window of
//! `K_v` consecutive rotating registers (its maximum number of
//! simultaneously live instances); windows are laid out back to back, so
//! the file size is `R = sum K_v`. Because every window slides by the
//! same amount each iteration, distinct values never collide.

use crate::mve::MveInfo;
use clasp_ddg::{Ddg, NodeId};
use clasp_sched::Schedule;
use std::collections::HashMap;

/// A rotating-register-file allocation for one scheduled loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrfInfo {
    offsets: HashMap<NodeId, i64>,
    size: i64,
}

impl RrfInfo {
    /// Allocate rotating windows for every value of `g` under `sched`.
    ///
    /// Window sizes are the same per-value instance counts MVE uses
    /// (steady-state overlap plus live-in distance coverage), so both
    /// models are verified by the same simulator.
    pub fn compute(g: &Ddg, sched: &Schedule) -> RrfInfo {
        let mve = MveInfo::compute(g, sched);
        let mut offsets = HashMap::new();
        let mut next = 0i64;
        // Deterministic allocation order: node id.
        let mut producers: Vec<NodeId> = g
            .nodes()
            .filter(|(_, op)| op.kind.produces_value())
            .map(|(n, _)| n)
            .collect();
        producers.sort();
        for v in producers {
            offsets.insert(v, next);
            next += i64::from(mve.instances(v));
        }
        RrfInfo {
            offsets,
            size: next.max(1),
        }
    }

    /// Physical rotating registers allocated (`R = sum K_v`).
    pub fn size(&self) -> i64 {
        self.size
    }

    /// Physical register holding iteration `i`'s instance of `def`:
    /// `(offset(def) - i) mod R`.
    ///
    /// # Panics
    ///
    /// Panics if `def` produces no value.
    pub fn reg_index(&self, def: NodeId, i: i64) -> u32 {
        let off = *self.offsets.get(&def).expect("value-producing node");
        (off - i).rem_euclid(self.size) as u32
    }
}

/// The register-naming model used by kernel emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterModel {
    /// Modulo variable expansion: kernel unrolled, rotation in software.
    Mve(MveInfo),
    /// Rotating register file: no unrolling, rotation in hardware.
    Rotating(RrfInfo),
}

impl RegisterModel {
    /// Build the default (MVE) model.
    pub fn mve(g: &Ddg, sched: &Schedule) -> RegisterModel {
        RegisterModel::Mve(MveInfo::compute(g, sched))
    }

    /// Build the rotating-file model.
    pub fn rotating(g: &Ddg, sched: &Schedule) -> RegisterModel {
        RegisterModel::Rotating(RrfInfo::compute(g, sched))
    }

    /// Register index for iteration `i`'s instance of `def`.
    pub fn reg_index(&self, def: NodeId, i: i64) -> u32 {
        match self {
            RegisterModel::Mve(m) => m.reg_index(def, i),
            RegisterModel::Rotating(r) => r.reg_index(def, i),
        }
    }

    /// Kernel unroll factor implied by the model (always 1 for a
    /// rotating file).
    pub fn unroll(&self) -> u32 {
        match self {
            RegisterModel::Mve(m) => m.unroll(),
            RegisterModel::Rotating(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, SchedulerConfig};

    fn fir_like() -> Ddg {
        // A sample consumed at distances 0..3: windows of 4.
        let mut g = Ddg::new("fir");
        let x = g.add(OpKind::Load);
        let m0 = g.add(OpKind::FpMult);
        let m3 = g.add(OpKind::FpMult);
        let st = g.add(OpKind::Store);
        g.add_dep(x, m0);
        g.add_dep_carried(x, m3, 3);
        g.add_dep(m0, st);
        g.add_dep(m3, st);
        g
    }

    #[test]
    fn windows_are_disjoint() {
        let g = fir_like();
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let rrf = RrfInfo::compute(&g, &s);
        // At any iteration j, the physical registers of all live
        // instances must be distinct.
        let mve = MveInfo::compute(&g, &s);
        for j in 0..12i64 {
            let mut used = std::collections::HashSet::new();
            for (n, op) in g.nodes() {
                if !op.kind.produces_value() {
                    continue;
                }
                for back in 0..i64::from(mve.instances(n)) {
                    let phys = rrf.reg_index(n, j - back);
                    assert!(
                        used.insert(phys),
                        "collision at iteration {j}: {n} instance -{back}"
                    );
                }
            }
        }
    }

    #[test]
    fn rotation_moves_every_iteration() {
        let g = fir_like();
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let rrf = RrfInfo::compute(&g, &s);
        let x = clasp_ddg::NodeId(0);
        let a = rrf.reg_index(x, 0);
        let b = rrf.reg_index(x, 1);
        assert_ne!(a, b, "rotating file renames each iteration");
        // Period R.
        assert_eq!(rrf.reg_index(x, 0), rrf.reg_index(x, rrf.size()));
    }

    #[test]
    fn model_unroll_factors() {
        let g = fir_like();
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let mve = RegisterModel::mve(&g, &s);
        let rot = RegisterModel::rotating(&g, &s);
        assert!(mve.unroll() >= 4, "distance-3 window forces unrolling");
        assert_eq!(rot.unroll(), 1, "hardware rotation needs no unrolling");
    }

    #[test]
    fn size_is_sum_of_windows() {
        let g = fir_like();
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let rrf = RrfInfo::compute(&g, &s);
        let mve = MveInfo::compute(&g, &s);
        let expect: i64 = g
            .nodes()
            .filter(|(_, op)| op.kind.produces_value())
            .map(|(n, _)| i64::from(mve.instances(n)))
            .sum();
        assert_eq!(rrf.size(), expect);
    }
}
