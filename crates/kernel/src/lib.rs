//! # clasp-kernel — software-pipelined kernel emission and verification
//!
//! The back end of the CLASP workspace: turns a cluster-annotated modulo
//! schedule into an executable software-pipelined loop and proves it
//! correct.
//!
//! - [`lifetimes`] / [`max_live`] / [`register_requirement`]: value live
//!   ranges and register pressure of a schedule;
//! - [`MveInfo`]: modulo variable expansion (Lam 1988) — the kernel
//!   unroll factor and per-value register rotation;
//! - [`emit_program`] / [`kernel_table`]: the cycle-by-cycle VLIW program
//!   (prologue, unrolled kernel, epilogue) with resolved per-cluster
//!   register names;
//! - [`stage_schedule`]: the stage-scheduling register-pressure pass
//!   (Eichenberger & Davidson 1995);
//! - [`verify_pipelined`]: a functional simulator that executes the
//!   emitted program on symbolic values — cluster register files, write
//!   latencies, copy transport — and compares every store's stream
//!   against sequential execution.
//!
//! # Examples
//!
//! ```
//! use clasp_ddg::{Ddg, OpKind};
//! use clasp_machine::presets;
//! use clasp_sched::{schedule_unified, unified_map, SchedulerConfig};
//! use clasp_kernel::{max_live, verify_pipelined, MveInfo};
//!
//! let mut g = Ddg::new("sum");
//! let a = g.add(OpKind::Load);
//! let acc = g.add(OpKind::FpAdd);
//! let st = g.add(OpKind::Store);
//! g.add_dep(a, acc);
//! g.add_dep_carried(acc, acc, 1);
//! g.add_dep(acc, st);
//!
//! let m = presets::unified_gp(4);
//! let sched = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
//! let map = unified_map(&g, &m);
//! assert!(max_live(&g, &sched) >= 2);
//! verify_pipelined(&g, &map, &sched, 16).unwrap(); // pipelined == sequential
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod emit;
mod lifetime;
mod mve;
mod rrf;
mod sim;
mod stage;

pub use emit::{emit_program, emit_program_with, kernel_table, Bundle, Program, Reg, SlotOp};
pub use lifetime::{lifetimes, max_live, register_requirement, Lifetime};
pub use mve::MveInfo;
pub use rrf::{RegisterModel, RrfInfo};
pub use sim::{
    reference_stream, run_program, verify_pipelined, verify_pipelined_with, SimError, StoreEvent,
};
pub use stage::{stage_schedule, StageResult};
