//! Modulo variable expansion (Lam, PLDI 1988).
//!
//! When a value's lifetime exceeds II, successive iterations' instances
//! of the value are live at once and cannot share a register. MVE unrolls
//! the kernel `U` times and gives each unrolled copy its own register, so
//! instance `i` writes register `i mod U` and a consumer at dependence
//! distance `d` reads register `(i - d) mod U`.
//!
//! We use the simple, always-correct variant: `U = max over values of
//! ceil(lifetime / II)`, and every value whose lifetime exceeds II gets
//! `U` registers (values fitting in one II keep a single register, which
//! is safe because their two instances never overlap).

use crate::lifetime::lifetimes;
use clasp_ddg::{Ddg, NodeId};
use clasp_sched::Schedule;
use std::collections::HashMap;

/// The register-expansion plan of one scheduled loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MveInfo {
    unroll: u32,
    instances: HashMap<NodeId, u32>,
}

impl MveInfo {
    /// Compute the expansion for `g` under `sched` (over the working
    /// graph, copies included — copies produce values too).
    ///
    /// A value needs `ceil(lifetime / II)` registers for steady-state
    /// overlap, and additionally at least `max consumer distance + 1`
    /// registers when it feeds a loop-carried use: the `d` live-in
    /// instances from before the loop must sit in distinct registers for
    /// a preheader to initialize them (a short schedule lifetime does not
    /// remove that requirement).
    pub fn compute(g: &Ddg, sched: &Schedule) -> MveInfo {
        let mut instances = HashMap::new();
        let mut unroll = 1u32;
        for lt in lifetimes(g, sched) {
            let max_dist = g
                .succ_edges(lt.def)
                .filter(|(_, e)| e.src != e.dst)
                .map(|(_, e)| e.distance)
                .max()
                .unwrap_or(0);
            let k = lt.instances(sched.ii()).max(max_dist + 1);
            instances.insert(lt.def, k);
            unroll = unroll.max(k);
        }
        MveInfo { unroll, instances }
    }

    /// The kernel unroll factor `U` (1 = no expansion needed).
    pub fn unroll(&self) -> u32 {
        self.unroll
    }

    /// Simultaneously live instances of `def`'s value (1 for values that
    /// fit in a single II, and for non-producing nodes).
    pub fn instances(&self, def: NodeId) -> u32 {
        self.instances.get(&def).copied().unwrap_or(1)
    }

    /// Registers allocated to `def`: 1 when it fits in an II, else `U`.
    pub fn regs_for(&self, def: NodeId) -> u32 {
        if self.instances(def) <= 1 {
            1
        } else {
            self.unroll
        }
    }

    /// The register index iteration `i`'s instance of `def` writes.
    pub fn reg_index(&self, def: NodeId, i: i64) -> u32 {
        if self.instances(def) <= 1 {
            0
        } else {
            i.rem_euclid(i64::from(self.unroll)) as u32
        }
    }

    /// Total registers allocated across all values (per cluster file the
    /// value is written into).
    pub fn total_regs(&self) -> u32 {
        self.instances.keys().map(|&d| self.regs_for(d)).sum()
    }

    /// The theoretical minimum (`sum of ceil(lifetime/II)`), for
    /// comparison with [`MveInfo::total_regs`]'s simple allocation.
    pub fn minimal_regs(&self) -> u32 {
        self.instances.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, SchedulerConfig};

    #[test]
    fn short_lifetimes_need_no_unroll() {
        let mut g = Ddg::new("seq");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::Store);
        g.add_dep(a, b);
        // II will be 1 but lifetime is exactly 1 cycle.
        let m = presets::unified_gp(2);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let mve = MveInfo::compute(&g, &s);
        if s.start(b).unwrap() - s.start(a).unwrap() <= i64::from(s.ii()) {
            assert_eq!(mve.instances(a), 1.max(mve.instances(a).min(2)));
        }
        assert!(mve.unroll() >= 1);
    }

    #[test]
    fn long_lifetime_forces_unroll() {
        // A load (lat 2) consumed 1 iteration later at II=1 -> lifetime
        // spans > 1 II -> expansion.
        let mut g = Ddg::new("mve");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep_carried(a, b, 2);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        assert_eq!(s.ii(), 1);
        let mve = MveInfo::compute(&g, &s);
        assert!(mve.instances(a) >= 2, "instances {}", mve.instances(a));
        assert!(mve.unroll() >= 2);
        // Register indices rotate.
        let u = i64::from(mve.unroll());
        assert_eq!(mve.reg_index(a, 0), 0);
        assert_eq!(mve.reg_index(a, u), 0);
        assert_ne!(mve.reg_index(a, 1), mve.reg_index(a, 0));
    }

    #[test]
    fn reg_index_handles_negative_iterations() {
        let mut g = Ddg::new("neg");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep_carried(a, b, 3);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let mve = MveInfo::compute(&g, &s);
        let u = i64::from(mve.unroll());
        if u > 1 {
            assert_eq!(mve.reg_index(a, -1), mve.reg_index(a, u - 1));
        } else {
            assert_eq!(mve.reg_index(a, -1), 0);
        }
    }

    #[test]
    fn totals_are_consistent() {
        let mut g = Ddg::new("mix");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep_carried(b, b, 1);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let mve = MveInfo::compute(&g, &s);
        assert!(mve.total_regs() >= mve.minimal_regs());
        assert!(mve.minimal_regs() >= 2); // a and b both produce
    }
}
