//! Functional simulation of the emitted pipelined program.
//!
//! The strongest correctness check in the workspace: execute the VLIW
//! program — cluster register files, write latencies, modulo-expanded
//! register names, copy transport and all — on symbolic values, and
//! compare every store's input stream against a plain sequential
//! execution of the loop. Any scheduling, renaming, copy-routing or
//! lifetime bug shows up as a value mismatch.
//!
//! Value semantics: a node with no value-carrying inputs (a load, or a
//! root computation) produces `source(node, iteration)`; any other node
//! produces `combine(node, input values)` — notably *independent* of the
//! iteration number, so the executor can only get it right by reading the
//! right registers. Instances from before the first iteration
//! (`iteration < 0`) take the distinguished `initial(node, iteration)`
//! value, mirroring a loop preheader.

use crate::emit::{emit_program, emit_program_with, Program, Reg};
use crate::rrf::RegisterModel;
use clasp_ddg::{Ddg, NodeId};
use clasp_mrt::ClusterMap;
use clasp_sched::Schedule;
use std::collections::HashMap;
use std::fmt;

/// One store's observed input, tagged with its logical iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// The store node.
    pub node: NodeId,
    /// Logical loop iteration.
    pub iteration: i64,
    /// Combined value of the store's inputs.
    pub value: u64,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A register was read before any instance wrote it.
    UninitializedRead {
        /// The register read.
        reg: Reg,
        /// Cycle of the offending read.
        cycle: i64,
    },
    /// A store observed a value different from sequential execution.
    Mismatch {
        /// The store node.
        node: NodeId,
        /// Logical iteration.
        iteration: i64,
        /// What the pipelined execution produced.
        got: u64,
        /// What sequential execution produces.
        expected: u64,
    },
    /// The pipelined execution produced a different number of store
    /// events than sequential execution.
    EventCount {
        /// Events observed.
        got: usize,
        /// Events expected.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UninitializedRead { reg, cycle } => {
                write!(f, "read of uninitialized register {reg} at cycle {cycle}")
            }
            SimError::Mismatch {
                node,
                iteration,
                got,
                expected,
            } => write!(
                f,
                "store {node} iteration {iteration}: got {got:#x}, expected {expected:#x}"
            ),
            SimError::EventCount { got, expected } => {
                write!(f, "{got} store events, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// SplitMix64-style value mixing.
fn mix(mut h: u64, x: u64) -> u64 {
    h ^= x
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(h << 6)
        .wrapping_add(h >> 2);
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 31)
}

/// Value of a source instance (node with no value inputs) at iteration
/// `i >= 0`.
fn source(node: NodeId, i: i64) -> u64 {
    mix(mix(0x5eed_0000_0000_0001, u64::from(node.0)), i as u64)
}

/// Value of an instance from before the loop (`i < 0`).
fn initial(node: NodeId, i: i64) -> u64 {
    mix(mix(0x1717_0000_0000_0002, u64::from(node.0)), i as u64)
}

/// Combine a node with its ordered input values.
fn combine(node: NodeId, inputs: &[u64]) -> u64 {
    let mut h = mix(0xc0b1_0000_0000_0003, u64::from(node.0));
    for &v in inputs {
        h = mix(h, v);
    }
    h
}

/// The value-carrying inputs of `n`, in edge order (the shared definition
/// both executions use).
fn value_preds(g: &Ddg, n: NodeId) -> Vec<(NodeId, i64)> {
    g.pred_edges(n)
        .filter(|(_, e)| e.src != e.dst && g.op(e.src).kind.produces_value())
        .map(|(_, e)| (e.src, i64::from(e.distance)))
        .collect()
}

/// Sequential reference execution: every node's value per iteration, and
/// the resulting store events.
pub fn reference_stream(g: &Ddg, n_iterations: i64) -> Vec<StoreEvent> {
    // Topological order over intra-iteration edges (the graph is
    // validated acyclic over distance-0 edges).
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for (_, e) in g.edges() {
        if e.distance == 0 && e.src != e.dst {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut topo: Vec<NodeId> = Vec::with_capacity(n);
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = stack.pop() {
        topo.push(NodeId(i as u32));
        for (_, e) in g.succ_edges(NodeId(i as u32)) {
            if e.distance == 0 && e.src != e.dst {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    stack.push(e.dst.index());
                }
            }
        }
    }
    assert_eq!(topo.len(), n, "graph must be validated");

    let mut values: HashMap<(NodeId, i64), u64> = HashMap::new();
    let mut events = Vec::new();
    for i in 0..n_iterations {
        for &node in &topo {
            let preds = value_preds(g, node);
            let inputs: Vec<u64> = preds
                .iter()
                .map(|&(p, d)| {
                    let j = i - d;
                    if j < 0 {
                        initial(p, j)
                    } else {
                        *values.get(&(p, j)).expect("topo order covers it")
                    }
                })
                .collect();
            let v = if g.op(node).kind.is_copy() {
                debug_assert_eq!(inputs.len(), 1, "a copy moves exactly one value");
                inputs[0]
            } else if inputs.is_empty() {
                source(node, i)
            } else {
                combine(node, &inputs)
            };
            values.insert((node, i), v);
            if g.op(node).kind == clasp_ddg::OpKind::Store {
                events.push(StoreEvent {
                    node,
                    iteration: i,
                    value: v,
                });
            }
        }
        // Trim old iterations to bound memory (keep the farthest
        // loop-carried reach-back window).
        let window = g
            .edges()
            .map(|(_, e)| i64::from(e.distance))
            .max()
            .unwrap_or(0)
            .max(1);
        if i > window {
            let horizon = i - window;
            values.retain(|&(_, j), _| j >= horizon);
        }
    }
    events
}

/// Execute the emitted program on the clustered register files, modeling
/// write latencies, and collect the store events in issue order.
///
/// # Errors
///
/// [`SimError::UninitializedRead`] when a register is read before any
/// write — a renaming or preheader bug.
pub fn run_program(g: &Ddg, program: &Program) -> Result<Vec<StoreEvent>, SimError> {
    let mut regs: HashMap<Reg, u64> = HashMap::new();
    // Preheader: live-in instances, in ascending iteration order.
    for &(reg, node, j) in &program.preheader {
        regs.insert(reg, initial(node, j));
    }

    // Pending writes ordered by (ready cycle, sequence).
    let mut pending: Vec<(i64, u64, Reg, u64)> = Vec::new();
    let mut seq: u64 = 0;
    let mut events = Vec::new();

    for bundle in &program.bundles {
        // Commit everything ready by this cycle.
        pending.sort_by_key(|&(ready, s, _, _)| (ready, s));
        let mut rest = Vec::new();
        for (ready, s, reg, v) in pending.drain(..) {
            if ready <= bundle.cycle {
                regs.insert(reg, v);
            } else {
                rest.push((ready, s, reg, v));
            }
        }
        pending = rest;

        for op in &bundle.ops {
            let inputs: Vec<u64> = op
                .reads
                .iter()
                .map(|r| {
                    regs.get(r).copied().ok_or(SimError::UninitializedRead {
                        reg: *r,
                        cycle: bundle.cycle,
                    })
                })
                .collect::<Result<_, _>>()?;
            let kind = g.op(op.node).kind;
            let value = if kind.is_copy() {
                debug_assert_eq!(inputs.len(), 1, "a copy moves exactly one value");
                inputs[0]
            } else if inputs.is_empty() {
                source(op.node, op.iteration)
            } else {
                combine(op.node, &inputs)
            };
            if kind == clasp_ddg::OpKind::Store {
                events.push(StoreEvent {
                    node: op.node,
                    iteration: op.iteration,
                    value,
                });
            }
            let ready = bundle.cycle + i64::from(kind.latency());
            for &reg in &op.writes {
                seq += 1;
                pending.push((ready, seq, reg, value));
            }
        }
    }
    Ok(events)
}

/// End-to-end verification: emit the pipelined program for `n_iterations`
/// and check every store's value stream against sequential execution.
///
/// A copy node's value is its input (identity), so the comparison is
/// performed against the *original* semantics: stores in the working
/// graph read through copies transparently.
///
/// # Errors
///
/// The first divergence found, as a [`SimError`].
pub fn verify_pipelined(
    g: &Ddg,
    map: &ClusterMap,
    sched: &Schedule,
    n_iterations: i64,
) -> Result<(), SimError> {
    let program = emit_program(g, map, sched, n_iterations);
    verify_program(g, &program, n_iterations)
}

/// As [`verify_pipelined`], with an explicit register-naming model (e.g.
/// [`RegisterModel::rotating`] for a rotating register file).
///
/// # Errors
///
/// The first divergence found, as a [`SimError`].
pub fn verify_pipelined_with(
    g: &Ddg,
    map: &ClusterMap,
    sched: &Schedule,
    n_iterations: i64,
    model: &RegisterModel,
) -> Result<(), SimError> {
    let program = emit_program_with(g, map, sched, n_iterations, model);
    verify_program(g, &program, n_iterations)
}

/// Shared comparison of an emitted program against sequential semantics.
fn verify_program(g: &Ddg, program: &Program, n_iterations: i64) -> Result<(), SimError> {
    let got = run_program(g, program)?;
    let expected = reference_stream(g, n_iterations);
    if got.len() != expected.len() {
        return Err(SimError::EventCount {
            got: got.len(),
            expected: expected.len(),
        });
    }
    let mut exp: HashMap<(NodeId, i64), u64> = expected
        .iter()
        .map(|e| ((e.node, e.iteration), e.value))
        .collect();
    for e in got {
        match exp.remove(&(e.node, e.iteration)) {
            Some(v) if v == e.value => {}
            Some(v) => {
                return Err(SimError::Mismatch {
                    node: e.node,
                    iteration: e.iteration,
                    got: e.value,
                    expected: v,
                })
            }
            None => {
                return Err(SimError::EventCount {
                    got: 1,
                    expected: 0,
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, unified_map, SchedulerConfig};

    fn verify_unified(g: &Ddg, width: u32, iters: i64) {
        let m = presets::unified_gp(width);
        let s = schedule_unified(g, &m, SchedulerConfig::default()).unwrap();
        let map = unified_map(g, &m);
        verify_pipelined(g, &map, &s, iters).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }

    #[test]
    fn straight_line_verifies() {
        let mut g = Ddg::new("line");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        verify_unified(&g, 4, 10);
    }

    #[test]
    fn reduction_verifies() {
        let mut g = Ddg::new("red");
        let a = g.add(OpKind::Load);
        let acc = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep(a, acc);
        g.add_dep_carried(acc, acc, 1);
        g.add_dep(acc, st);
        verify_unified(&g, 4, 12);
    }

    #[test]
    fn long_lifetime_exercises_mve() {
        // load consumed three iterations later: forces unroll >= 4 at
        // II = 1.
        let mut g = Ddg::new("mve");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep_carried(a, b, 3);
        g.add_dep(b, st);
        verify_unified(&g, 4, 15);
    }

    #[test]
    fn distance_two_recurrence_verifies() {
        let mut g = Ddg::new("d2");
        let x = g.add(OpKind::Load);
        let f = g.add(OpKind::FpMult);
        let s = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep(x, f);
        g.add_dep(f, s);
        g.add_dep_carried(s, f, 2);
        g.add_dep(s, st);
        verify_unified(&g, 4, 14);
    }

    #[test]
    fn reference_stream_is_deterministic() {
        let mut g = Ddg::new("det");
        let a = g.add(OpKind::Load);
        let st = g.add(OpKind::Store);
        g.add_dep(a, st);
        let x = reference_stream(&g, 5);
        let y = reference_stream(&g, 5);
        assert_eq!(x, y);
        assert_eq!(x.len(), 5);
        // Distinct values per iteration.
        let distinct: std::collections::HashSet<u64> = x.iter().map(|e| e.value).collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn zero_iterations_is_empty() {
        let mut g = Ddg::new("z");
        let a = g.add(OpKind::Load);
        let st = g.add(OpKind::Store);
        g.add_dep(a, st);
        verify_unified(&g, 4, 0);
        assert!(reference_stream(&g, 0).is_empty());
    }

    #[test]
    fn zero_trip_count_verifies_under_both_register_models() {
        // Trip count 0: the preheader primes live-ins but no kernel
        // bundle may execute, under MVE and rotating renaming alike —
        // even with a recurrence whose reach-back would read live-ins.
        let mut g = Ddg::new("z0");
        let a = g.add(OpKind::Load);
        let acc = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep(a, acc);
        g.add_dep_carried(acc, acc, 1);
        g.add_dep(acc, st);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &m);
        for model in [RegisterModel::mve(&g, &s), RegisterModel::rotating(&g, &s)] {
            let program = emit_program_with(&g, &map, &s, 0, &model);
            assert_eq!(run_program(&g, &program).unwrap(), vec![]);
            verify_pipelined_with(&g, &map, &s, 0, &model).unwrap();
        }
    }

    #[test]
    fn single_cluster_zero_bus_machine_runs_end_to_end() {
        // A unified machine with a zero-width bus: no value ever crosses
        // clusters, so compilation and simulation must be oblivious to
        // the missing bandwidth.
        use clasp_machine::{ClusterSpec, Interconnect, MachineSpec};
        let m = MachineSpec::new(
            "solo-nobus",
            vec![ClusterSpec::general(4)],
            Interconnect::Bus {
                buses: 0,
                read_ports: 1,
                write_ports: 1,
            },
        );
        let mut g = Ddg::new("nobus");
        let a = g.add(OpKind::Load);
        let f = g.add(OpKind::FpMult);
        let st = g.add(OpKind::Store);
        g.add_dep(a, f);
        g.add_dep(f, st);
        let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &m);
        verify_pipelined(&g, &map, &s, 9).unwrap();
    }

    #[test]
    fn mismatch_detected_when_schedule_is_wrong() {
        // Hand-build an invalid schedule (consumer before producer value
        // is ready) and check the simulator catches it.
        use std::collections::HashMap as Map;
        let mut g = Ddg::new("bad");
        let a = g.add(OpKind::Load); // lat 2
        let st = g.add(OpKind::Store);
        g.add_dep(a, st);
        let m = presets::unified_gp(4);
        let map = unified_map(&g, &m);
        let mut t = Map::new();
        t.insert(a, 0i64);
        t.insert(st, 1i64); // too early: value ready at 2
        let s = clasp_sched::Schedule::new(4, t);
        let err = verify_pipelined(&g, &map, &s, 4);
        assert!(err.is_err(), "simulator must catch the early read");
    }
}
