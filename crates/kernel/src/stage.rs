//! Stage scheduling (Eichenberger & Davidson, MICRO-28 1995).
//!
//! A modulo schedule fixes each operation's kernel row (`cycle mod II`);
//! *which stage* the operation sits in is still free within its
//! dependence slack. Moving an operation by whole multiples of II leaves
//! the modulo reservation table untouched — same row, same resources —
//! but changes value lifetimes, and with them the register requirement.
//! This pass greedily re-stages operations to minimize the total lifetime
//! (the MVE register-requirement proxy), iterating to a fixpoint.
//!
//! The paper's introduction names exactly this combination — an iterative
//! modulo scheduler plus a stage scheduler — as the state of the art its
//! assignment pass slots in front of.

use crate::lifetime::lifetimes;
use clasp_ddg::{Ddg, NodeId};
use clasp_sched::Schedule;
use std::collections::HashMap;

/// Result of [`stage_schedule`].
#[derive(Debug, Clone)]
pub struct StageResult {
    /// The re-staged schedule (same II, same kernel rows).
    pub schedule: Schedule,
    /// Total lifetime before the pass.
    pub lifetime_before: i64,
    /// Total lifetime after the pass.
    pub lifetime_after: i64,
    /// Operations actually moved.
    pub moves: usize,
}

fn total_lifetime(g: &Ddg, sched: &Schedule) -> i64 {
    lifetimes(g, sched).iter().map(|lt| lt.len()).sum()
}

/// Lifetime length of `v` under `times` (0 for non-producers).
fn lifetime_of(g: &Ddg, times: &HashMap<NodeId, i64>, ii: i64, v: NodeId) -> i64 {
    let kind = g.op(v).kind;
    if !kind.produces_value() {
        return 0;
    }
    let start = times[&v];
    let mut end = start + i64::from(kind.latency());
    for (_, e) in g.succ_edges(v) {
        if e.src == e.dst {
            continue;
        }
        end = end.max(times[&e.dst] + i64::from(e.distance) * ii);
    }
    end - start
}

/// The part of the total lifetime affected by moving `n`: its own
/// lifetime plus the lifetimes of its distinct value-producing
/// predecessors (whose ends may be anchored by `n`).
fn local_cost(g: &Ddg, times: &HashMap<NodeId, i64>, ii: i64, n: NodeId) -> i64 {
    let mut cost = lifetime_of(g, times, ii, n);
    let mut seen: Vec<NodeId> = Vec::new();
    for (_, e) in g.pred_edges(n) {
        if e.src != n && !seen.contains(&e.src) {
            seen.push(e.src);
            cost += lifetime_of(g, times, ii, e.src);
        }
    }
    cost
}

/// The window of legal issue cycles for `n` (stepping by II keeps the
/// row), given every other node's time: `[lo, hi]` in absolute cycles.
fn slack_window(g: &Ddg, times: &HashMap<NodeId, i64>, ii: i64, n: NodeId) -> (i64, i64) {
    let mut lo = i64::MIN / 4;
    let mut hi = i64::MAX / 4;
    for (_, e) in g.pred_edges(n) {
        if e.src == n {
            continue;
        }
        let tp = times[&e.src];
        lo = lo.max(tp + i64::from(e.latency) - i64::from(e.distance) * ii);
    }
    for (_, e) in g.succ_edges(n) {
        if e.dst == n {
            continue;
        }
        let ts = times[&e.dst];
        hi = hi.min(ts - i64::from(e.latency) + i64::from(e.distance) * ii);
    }
    (lo, hi)
}

/// Re-stage the schedule to reduce register pressure. Kernel rows (and
/// therefore all resource placements) are preserved exactly; only stages
/// move, within dependence slack. Runs greedy passes until no single move
/// improves the total lifetime (bounded at `4 * nodes` passes).
///
/// # Panics
///
/// Panics if some node of `g` has no cycle in `sched`.
pub fn stage_schedule(g: &Ddg, sched: &Schedule) -> StageResult {
    let ii = i64::from(sched.ii());
    let mut times: HashMap<NodeId, i64> = g
        .node_ids()
        .map(|n| (n, sched.start(n).expect("scheduled")))
        .collect();
    let before = total_lifetime(g, sched);
    let mut current = before;
    let mut moves = 0usize;

    let max_passes = 4 * g.node_count().max(1);
    'outer: for _ in 0..max_passes {
        let mut improved = false;
        for n in g.node_ids() {
            let t0 = times[&n];
            let (lo, hi) = slack_window(g, &times, ii, n);
            // Sources/sinks have one-sided (unbounded) slack; restaging
            // them beyond a few stages of their current position can only
            // stretch lifetimes, so clamp the scan.
            let lo = lo.max(t0 - 8 * ii);
            let hi = hi.min(t0 + 8 * ii);
            if lo > hi {
                continue; // no slack (tight recurrence)
            }
            // Candidate cycles congruent to t0 modulo II inside [lo, hi].
            let first = lo + (t0 - lo).rem_euclid(ii);
            let base_local = local_cost(g, &times, ii, n);
            let mut best = (base_local, t0);
            let mut t = first;
            while t <= hi {
                if t != t0 {
                    times.insert(n, t);
                    let cost = local_cost(g, &times, ii, n);
                    if cost < best.0 {
                        best = (cost, t);
                    }
                }
                t += ii;
            }
            times.insert(n, best.1);
            if best.1 != t0 {
                current += best.0 - base_local;
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break 'outer;
        }
    }

    StageResult {
        schedule: Schedule::new(sched.ii(), times),
        lifetime_before: before,
        lifetime_after: current,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::register_requirement;
    use crate::sim::verify_pipelined;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, unified_map, validate_schedule, SchedulerConfig};

    #[test]
    fn restaging_preserves_rows_and_validity() {
        let mut g = Ddg::new("spread");
        // Wide graph with lots of slack: loads feeding a late store chain.
        let mut sinks = Vec::new();
        for _ in 0..4 {
            let l = g.add(OpKind::Load);
            sinks.push(l);
        }
        let mut prev = sinks[0];
        for &s in &sinks[1..] {
            let add = g.add(OpKind::FpAdd);
            g.add_dep(prev, add);
            g.add_dep(s, add);
            prev = add;
        }
        let st = g.add(OpKind::Store);
        g.add_dep(prev, st);
        let m = presets::unified_gp(4);
        let sched = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &m);
        let result = stage_schedule(&g, &sched);
        // Same rows.
        for n in g.node_ids() {
            assert_eq!(
                sched.kernel_row(n),
                result.schedule.kernel_row(n),
                "row of {n} changed"
            );
        }
        // Still a valid schedule.
        assert_eq!(validate_schedule(&g, &m, &map, &result.schedule), Ok(()));
        // Never worse.
        assert!(result.lifetime_after <= result.lifetime_before);
    }

    #[test]
    fn reduces_pressure_on_slack_heavy_loop() {
        // Early loads with a distant consumer: the iterative scheduler
        // issues them ASAP, stage scheduling should sink them.
        let mut g = Ddg::new("sink");
        let l1 = g.add(OpKind::Load);
        let l2 = g.add(OpKind::Load);
        let chain1 = g.add(OpKind::FpMult);
        let chain2 = g.add(OpKind::FpMult);
        let chain3 = g.add(OpKind::FpAdd);
        let join = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep(l1, chain1);
        g.add_dep(chain1, chain2);
        g.add_dep(chain2, chain3);
        g.add_dep(chain3, join);
        g.add_dep(l2, join); // l2 has lots of slack
        g.add_dep(join, st);
        let m = presets::unified_gp(2);
        let sched = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let result = stage_schedule(&g, &sched);
        assert!(
            result.lifetime_after <= result.lifetime_before,
            "{} -> {}",
            result.lifetime_before,
            result.lifetime_after
        );
        let before = register_requirement(&g, &sched);
        let after = register_requirement(&g, &result.schedule);
        assert!(after <= before, "registers {before} -> {after}");
    }

    #[test]
    fn restaged_schedule_still_simulates() {
        let mut g = Ddg::new("simcheck");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::Load);
        let m1 = g.add(OpKind::FpMult);
        let s = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        g.add_dep(a, m1);
        g.add_dep(m1, s);
        g.add_dep(b, s);
        g.add_dep_carried(s, s, 1);
        g.add_dep(s, st);
        let mach = presets::unified_gp(4);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let result = stage_schedule(&g, &sched);
        verify_pipelined(&g, &map, &result.schedule, 14).unwrap();
    }

    #[test]
    fn tight_recurrence_is_left_alone() {
        let mut g = Ddg::new("tight");
        let a = g.add(OpKind::FpAdd);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let m = presets::unified_gp(4);
        let sched = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
        let result = stage_schedule(&g, &sched);
        assert_eq!(result.moves, 0, "no slack to exploit");
        assert_eq!(result.lifetime_before, result.lifetime_after);
    }
}
