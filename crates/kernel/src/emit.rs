//! Emission of the software-pipelined loop: a cycle-by-cycle VLIW program
//! (prologue, `U` unrolled kernel copies, epilogue) with fully resolved
//! modulo-expanded register names per cluster register file.

use crate::mve::MveInfo;
use crate::rrf::RegisterModel;
use clasp_ddg::{Ddg, NodeId};
use clasp_machine::ClusterId;
use clasp_mrt::ClusterMap;
use clasp_sched::Schedule;
use std::collections::HashMap;
use std::fmt;

/// A register in one cluster's register file: the `index`-th
/// modulo-expanded register of the value produced by `def`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// Which cluster's register file.
    pub cluster: ClusterId,
    /// The value (producing node of the working graph).
    pub def: NodeId,
    /// Modulo-expansion index (`iteration mod U`, or 0 when unexpanded).
    pub index: u32,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:r{}_{}", self.cluster, self.def.0, self.index)
    }
}

/// One operation instance in a VLIW bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotOp {
    /// The working-graph node.
    pub node: NodeId,
    /// Which logical loop iteration this instance belongs to.
    pub iteration: i64,
    /// Source registers, one per value-carrying incoming edge, in edge
    /// order.
    pub reads: Vec<Reg>,
    /// Destination registers (the op's own cluster, plus each copy
    /// target's file for copies). Empty for stores and branches.
    pub writes: Vec<Reg>,
}

/// All operations issued in one cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bundle {
    /// Issue cycle (0-based from the first issue of iteration 0).
    pub cycle: i64,
    /// Operations issued this cycle.
    pub ops: Vec<SlotOp>,
}

/// A fully emitted pipelined execution of `n_iterations` of the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Bundles in cycle order (cycles with no issue are omitted).
    pub bundles: Vec<Bundle>,
    /// The initiation interval.
    pub ii: u32,
    /// Pipeline depth in stages.
    pub stages: i64,
    /// MVE unroll factor of the kernel.
    pub unroll: u32,
    /// Iterations emitted.
    pub iterations: i64,
    /// Loop-preheader register initialization: for every value and every
    /// negative iteration a consumer can reach (`-maxdist..0`), the
    /// register that instance would occupy. Listed in ascending iteration
    /// order so a later instance correctly overwrites an earlier one that
    /// shares a register.
    pub preheader: Vec<(Reg, NodeId, i64)>,
}

impl Program {
    /// Total cycles from first to last issue (inclusive), 0 if empty.
    pub fn span(&self) -> i64 {
        match (self.bundles.first(), self.bundles.last()) {
            (Some(a), Some(b)) => b.cycle - a.cycle + 1,
            _ => 0,
        }
    }

    /// Number of operation instances issued.
    pub fn issue_count(&self) -> usize {
        self.bundles.iter().map(|b| b.ops.len()).sum()
    }
}

/// Resolve the source registers of `node` at logical iteration `i`.
fn resolve_reads(
    g: &Ddg,
    map: &ClusterMap,
    model: &RegisterModel,
    node: NodeId,
    i: i64,
) -> Vec<Reg> {
    let my_cluster = map.cluster_of(node).expect("node assigned");
    let mut reads = Vec::new();
    for (_, e) in g.pred_edges(node) {
        if e.src == e.dst {
            continue; // self edges carry no register operand here
        }
        if !g.op(e.src).kind.produces_value() {
            continue; // precedence-only edge
        }
        reads.push(Reg {
            cluster: my_cluster,
            def: e.src,
            index: model.reg_index(e.src, i - i64::from(e.distance)),
        });
    }
    reads
}

/// Resolve the destination registers of `node` at logical iteration `i`:
/// its own cluster's file, plus each copy target's file.
fn resolve_writes(
    g: &Ddg,
    map: &ClusterMap,
    model: &RegisterModel,
    node: NodeId,
    i: i64,
) -> Vec<Reg> {
    if !g.op(node).kind.produces_value() {
        return Vec::new();
    }
    let index = model.reg_index(node, i);
    match map.copy_meta(node) {
        Some(meta) => meta
            .targets
            .iter()
            .map(|&t| Reg {
                cluster: t,
                def: node,
                index,
            })
            .collect(),
        None => vec![Reg {
            cluster: map.cluster_of(node).expect("assigned"),
            def: node,
            index,
        }],
    }
}

/// Emit the full pipelined program for `n_iterations` of the scheduled,
/// cluster-annotated loop. Iteration `i`'s instance of a node scheduled
/// at cycle `t` issues at `t - t_min + i * II`.
///
/// # Panics
///
/// Panics if some node is unscheduled or unassigned, or
/// `n_iterations < 0`.
pub fn emit_program(g: &Ddg, map: &ClusterMap, sched: &Schedule, n_iterations: i64) -> Program {
    let model = RegisterModel::Mve(MveInfo::compute(g, sched));
    emit_program_with(g, map, sched, n_iterations, &model)
}

/// As [`emit_program`], with an explicit register-naming model: modulo
/// variable expansion (software renaming, kernel unrolled) or a rotating
/// register file (hardware renaming, no unrolling).
///
/// # Panics
///
/// As [`emit_program`].
pub fn emit_program_with(
    g: &Ddg,
    map: &ClusterMap,
    sched: &Schedule,
    n_iterations: i64,
    model: &RegisterModel,
) -> Program {
    assert!(n_iterations >= 0);
    let ii = i64::from(sched.ii());
    // Normalize so the earliest issue of iteration 0 is cycle 0.
    let t_min = g
        .node_ids()
        .filter_map(|n| sched.start(n))
        .min()
        .unwrap_or(0);
    let t_max = g
        .node_ids()
        .filter_map(|n| sched.start(n))
        .max()
        .unwrap_or(0);
    let stages = if g.node_count() == 0 {
        0
    } else {
        (t_max - t_min).div_euclid(ii) + 1
    };

    let mut by_cycle: HashMap<i64, Vec<SlotOp>> = HashMap::new();
    for i in 0..n_iterations {
        for n in g.node_ids() {
            let t = sched.start(n).expect("scheduled") - t_min + i * ii;
            by_cycle.entry(t).or_default().push(SlotOp {
                node: n,
                iteration: i,
                reads: resolve_reads(g, map, model, n, i),
                writes: resolve_writes(g, map, model, n, i),
            });
        }
    }
    let mut bundles: Vec<Bundle> = by_cycle
        .into_iter()
        .map(|(cycle, mut ops)| {
            ops.sort_by_key(|o| (o.node, o.iteration));
            Bundle { cycle, ops }
        })
        .collect();
    bundles.sort_by_key(|b| b.cycle);

    // Preheader: live-in instances from iterations a carried consumer can
    // reach back to.
    let max_dist = g
        .edges()
        .map(|(_, e)| i64::from(e.distance))
        .max()
        .unwrap_or(0);
    let mut preheader = Vec::new();
    for j in -max_dist..0 {
        for n in g.node_ids() {
            for reg in resolve_writes(g, map, model, n, j) {
                preheader.push((reg, n, j));
            }
        }
    }

    Program {
        bundles,
        ii: sched.ii(),
        stages,
        unroll: model.unroll(),
        iterations: n_iterations,
        preheader,
    }
}

/// Render the steady-state kernel as a human-readable table: one row per
/// kernel cycle (`II` rows), each listing `op@stage` per cluster.
pub fn kernel_table(g: &Ddg, map: &ClusterMap, sched: &Schedule, clusters: usize) -> String {
    use std::fmt::Write as _;
    let ii = i64::from(sched.ii());
    let t_min = g
        .node_ids()
        .filter_map(|n| sched.start(n))
        .min()
        .unwrap_or(0);
    let mut cells: Vec<Vec<Vec<String>>> = vec![vec![Vec::new(); clusters]; ii as usize];
    for (n, op) in g.nodes() {
        let t = sched.start(n).expect("scheduled") - t_min;
        let row = t.rem_euclid(ii) as usize;
        let stage = t.div_euclid(ii);
        let c = map.cluster_of(n).expect("assigned").index();
        cells[row][c].push(format!("{}@{}", op.label(), stage));
    }
    let mut s = String::new();
    let _ = writeln!(s, "kernel (II = {ii}):");
    for (row, per_cluster) in cells.iter().enumerate() {
        let _ = write!(s, "  row {row}:");
        for (c, ops) in per_cluster.iter().enumerate() {
            let _ = write!(s, "  C{c}[{}]", ops.join(" "));
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_sched::{schedule_unified, unified_map, SchedulerConfig};

    fn simple_loop() -> Ddg {
        let mut g = Ddg::new("axpy");
        let x = g.add(OpKind::Load);
        let m = g.add(OpKind::FpMult);
        let s = g.add(OpKind::Store);
        g.add_dep(x, m);
        g.add_dep(m, s);
        g
    }

    #[test]
    fn program_issues_every_instance_once() {
        let g = simple_loop();
        let mach = presets::unified_gp(4);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let p = emit_program(&g, &map, &sched, 5);
        assert_eq!(p.issue_count(), 5 * g.node_count());
        assert_eq!(p.iterations, 5);
        // Iteration instances are II apart.
        let issues: Vec<(i64, i64)> = p
            .bundles
            .iter()
            .flat_map(|b| {
                b.ops
                    .iter()
                    .filter(|o| o.node == NodeId(0))
                    .map(move |o| (o.iteration, b.cycle))
            })
            .collect();
        for w in issues.windows(2) {
            assert_eq!(w[1].1 - w[0].1, i64::from(p.ii));
        }
    }

    #[test]
    fn writes_and_reads_resolve() {
        let g = simple_loop();
        let mach = presets::unified_gp(4);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let p = emit_program(&g, &map, &sched, 1);
        let fmul = p
            .bundles
            .iter()
            .flat_map(|b| &b.ops)
            .find(|o| o.node == NodeId(1))
            .unwrap();
        assert_eq!(fmul.reads.len(), 1);
        assert_eq!(fmul.reads[0].def, NodeId(0));
        assert_eq!(fmul.writes.len(), 1);
        let store = p
            .bundles
            .iter()
            .flat_map(|b| &b.ops)
            .find(|o| o.node == NodeId(2))
            .unwrap();
        assert!(store.writes.is_empty());
        assert_eq!(store.reads[0].def, NodeId(1));
    }

    #[test]
    fn empty_loop_emits_nothing() {
        let g = Ddg::new("empty");
        let mach = presets::unified_gp(4);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let p = emit_program(&g, &map, &sched, 3);
        assert_eq!(p.issue_count(), 0);
        assert_eq!(p.span(), 0);
    }

    #[test]
    fn kernel_table_renders() {
        let g = simple_loop();
        let mach = presets::unified_gp(2);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let table = kernel_table(&g, &map, &sched, 1);
        assert!(table.contains("kernel (II ="));
        assert!(table.contains("row 0:"));
        assert!(table.contains('@'));
    }

    #[test]
    fn stage_count_matches_schedule() {
        let g = simple_loop();
        let mach = presets::unified_gp(1);
        let sched = schedule_unified(&g, &mach, SchedulerConfig::default()).unwrap();
        let map = unified_map(&g, &mach);
        let p = emit_program(&g, &map, &sched, 2);
        assert!(p.stages >= 1);
        assert!(p.span() >= i64::from(p.ii) * 2);
    }
}
