//! Equivalence regression: a precomputed, reused [`SchedContext`] must
//! produce bit-identical results to the per-II-recompute path
//! ([`iterative_schedule`] called with a fresh everything at every II) —
//! same successful II, same start cycle for every node — across a
//! generated corpus, on both the unified machine and clustered working
//! graphs produced by the real assigner.

use clasp_core::{assign, AssignConfig};
use clasp_ddg::LoopAnalysis;
use clasp_loopgen::{generate_corpus, CorpusConfig};
use clasp_machine::presets;
use clasp_sched::{
    iterative_schedule, max_ii_bound, unified_map, validate_schedule, SchedContext, SchedulerConfig,
};

fn corpus() -> Vec<clasp_ddg::Ddg> {
    generate_corpus(CorpusConfig {
        loops: 40,
        scc_loops: 10,
        seed: 0xE9E5_2026,
    })
}

#[test]
fn unified_sweep_is_bit_identical_to_per_ii_recompute() {
    let machine = presets::unified_gp(8);
    let cfg = SchedulerConfig::default();
    for g in corpus() {
        let map = unified_map(&g, &machine);
        let mii = machine.mii(&g).max(1);
        let cap = max_ii_bound(&g, mii);

        let mut ctx = SchedContext::new(&g, &machine, &map).expect("context builds");
        let swept = ctx.schedule_in_range(mii, cap, cfg).ok();
        let fresh = (mii..=cap).find_map(|ii| iterative_schedule(&g, &machine, &map, ii, cfg).ok());

        match (swept, fresh) {
            (Some(a), Some(b)) => {
                assert_eq!(a.ii(), b.ii(), "{}: II diverged", g.name());
                for v in g.node_ids() {
                    assert_eq!(
                        a.start(v),
                        b.start(v),
                        "{}: start of {v} diverged",
                        g.name()
                    );
                }
                assert_eq!(
                    validate_schedule(&g, &machine, &map, &a),
                    Ok(()),
                    "{}",
                    g.name()
                );
            }
            (a, b) => assert_eq!(
                a.map(|s| s.ii()),
                b.map(|s| s.ii()),
                "{}: one path failed where the other succeeded",
                g.name()
            ),
        }
    }
}

#[test]
fn clustered_sweep_is_bit_identical_to_per_ii_recompute() {
    let machine = presets::four_cluster_gp(4, 2);
    let cfg = SchedulerConfig::default();
    for g in corpus() {
        let Ok(asg) = assign(&g, &machine, AssignConfig::default()) else {
            continue;
        };
        let cap = max_ii_bound(&asg.graph, asg.ii);

        let mut ctx = SchedContext::new(&asg.graph, &machine, &asg.map).expect("context builds");
        let swept = ctx.schedule_in_range(asg.ii, cap, cfg).ok();
        let fresh = (asg.ii..=cap)
            .find_map(|ii| iterative_schedule(&asg.graph, &machine, &asg.map, ii, cfg).ok());

        match (swept, fresh) {
            (Some(a), Some(b)) => {
                assert_eq!(a.ii(), b.ii(), "{}: II diverged", g.name());
                for v in asg.graph.node_ids() {
                    assert_eq!(
                        a.start(v),
                        b.start(v),
                        "{}: start of {v} diverged",
                        g.name()
                    );
                }
                assert_eq!(
                    validate_schedule(&asg.graph, &machine, &asg.map, &a),
                    Ok(()),
                    "{}",
                    g.name()
                );
            }
            (a, b) => assert_eq!(
                a.map(|s| s.ii()),
                b.map(|s| s.ii()),
                "{}: one path failed where the other succeeded",
                g.name()
            ),
        }
    }
}

/// A context built around a caller-supplied [`LoopAnalysis`] must behave
/// exactly like one that computed the analysis itself.
#[test]
fn borrowed_analysis_matches_owned() {
    let machine = presets::four_cluster_gp(4, 2);
    let cfg = SchedulerConfig::default();
    for g in corpus() {
        let Ok(asg) = assign(&g, &machine, AssignConfig::default()) else {
            continue;
        };
        let cap = max_ii_bound(&asg.graph, asg.ii);
        let la = LoopAnalysis::compute(&asg.graph);

        let mut owned = SchedContext::new(&asg.graph, &machine, &asg.map).unwrap();
        let mut borrowed =
            SchedContext::with_analysis(&asg.graph, &machine, &asg.map, &la).unwrap();
        let a = owned.schedule_in_range(asg.ii, cap, cfg);
        let b = borrowed.schedule_in_range(asg.ii, cap, cfg);
        assert_eq!(a, b, "{}", g.name());
    }
}
