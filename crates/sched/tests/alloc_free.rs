//! Verifies the tentpole's allocation claim: once a [`SchedContext`] is
//! warmed (its reservation table sized for the largest II it has seen and
//! its eviction scratch grown), an II attempt performs **zero** heap
//! allocations until a successful attempt materializes its `Schedule`.
//!
//! A counting global allocator wraps the system one; this file contains a
//! single test so no concurrent test can perturb the counter.

use clasp_ddg::{Ddg, OpKind};
use clasp_machine::presets;
use clasp_sched::{unified_map, SchedContext, SchedulerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A loop big enough to exercise eviction and displacement: a recurrence
/// plus enough independent work to overload a narrow machine at small IIs.
fn busy_loop() -> Ddg {
    let mut g = Ddg::new("busy");
    let a = g.add(OpKind::IntAlu);
    let b = g.add(OpKind::Load);
    let c = g.add(OpKind::IntAlu);
    g.add_dep(a, b);
    g.add_dep(b, c);
    g.add_dep_carried(c, a, 1);
    for _ in 0..12 {
        let x = g.add(OpKind::IntAlu);
        let y = g.add(OpKind::Load);
        g.add_dep(x, y);
    }
    g
}

#[test]
fn warmed_attempts_do_not_allocate() {
    let g = busy_loop();
    let machine = presets::unified_gp(2);
    let map = unified_map(&g, &machine);
    let cfg = SchedulerConfig::default();
    let mut ctx = SchedContext::new(&g, &machine, &map).expect("context builds");

    // Find the smallest working II so the test has both failing and
    // succeeding attempts to measure.
    let good_ii = (1..=64)
        .find(|&ii| ctx.attempt(ii, cfg).is_ok())
        .expect("some II schedules");
    assert!(good_ii > 1, "need at least one failing II for the test");

    // Warm-up: size the reservation table for the largest II measured
    // below and grow the eviction scratch along the forced-placement path.
    let _ = ctx.attempt(good_ii, cfg);
    let _ = ctx.attempt(1, cfg);

    // Failing attempts — the steady path of an II sweep — must not touch
    // the allocator at all, warm or repeated, ascending or descending.
    for ii in 1..good_ii {
        let before = allocs();
        assert!(ctx.attempt(ii, cfg).is_err());
        assert_eq!(allocs() - before, 0, "failing attempt at II={ii} allocated");
    }

    // A successful attempt allocates only to materialize the returned
    // Schedule (one result map). Bound it loosely: materialization is
    // O(nodes) insertions, nowhere near the per-attempt rebuild the seed
    // scheduler performed.
    let before = allocs();
    let s = ctx.attempt(good_ii, cfg).expect("warmed II still works");
    let delta = allocs() - before;
    assert!(
        delta <= 2 * g.node_count() as u64 + 8,
        "successful attempt allocated {delta} times; expected only the \
         Schedule materialization"
    );
    assert_eq!(s.ii(), good_ii);
}
