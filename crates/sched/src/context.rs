//! A reusable scheduling context: everything the iterative modulo
//! scheduler needs that does not depend on the initiation interval,
//! prepared once per (graph, machine, cluster map) and reused across the
//! whole II sweep.
//!
//! The seed scheduler rebuilt the swing order, the priority array, the
//! resource-request table, the reservation table, and four per-node
//! scratch vectors on *every* II attempt. [`SchedContext`] hoists all of
//! that out of the sweep: one [`LoopAnalysis`], one [`SlotRequest`] table,
//! one epoch-counted [`TimeMrt`] whose `reset` is O(1), and scratch
//! buffers that are cleared (not reallocated) between attempts. A warmed
//! context performs no heap allocation during an II attempt until the
//! final successful attempt materializes its [`Schedule`].
//!
//! Every attempt starts from fully reset state, so a context-driven sweep
//! is decision-for-decision identical to scheduling each II with a fresh
//! context (the `tests/context_equivalence.rs` regression pins this).

use crate::failure::SchedFailure;
use crate::iterative::SchedulerConfig;
use crate::schedule::{slot_request, Schedule, ScheduleError};
use crate::stats::{conflict_index, AttemptStats};
use clasp_ddg::{Ddg, LoopAnalysis, NodeId};
use clasp_machine::MachineSpec;
use clasp_mrt::{ClusterMap, PlaceOutcome, SlotRequest, TimeMrt};
use std::collections::HashMap;

enum AnalysisRef<'a> {
    Owned(LoopAnalysis),
    Borrowed(&'a LoopAnalysis),
}

/// Amortized state for scheduling one annotated graph on one machine at
/// many candidate IIs.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
/// use clasp_sched::{unified_map, SchedContext, SchedulerConfig};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let m = presets::unified_gp(2);
/// let map = unified_map(&g, &m);
/// let mut ctx = SchedContext::new(&g, &m, &map).unwrap();
/// let s = ctx.schedule_in_range(1, 8, SchedulerConfig::default()).unwrap();
/// assert_eq!(s.ii(), 1);
/// ```
pub struct SchedContext<'a> {
    g: &'a Ddg,
    machine: &'a MachineSpec,
    map: &'a ClusterMap,
    analysis: AnalysisRef<'a>,
    /// Resource request per node (indexed by `NodeId::index`).
    requests: Vec<SlotRequest>,
    /// [`AttemptStats::conflicts`] lane per node (indexed by
    /// `NodeId::index`), precomputed so the hot loop only indexes.
    conflict_lane: Vec<u8>,
    mrt: TimeMrt,
    time: Vec<Option<i64>>,
    prev_time: Vec<i64>,
    ever_scheduled: Vec<bool>,
    evicted: Vec<NodeId>,
    stats: AttemptStats,
}

impl<'a> SchedContext<'a> {
    /// Build a context, computing the [`LoopAnalysis`] internally.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::MissingAssignment`] / [`ScheduleError::MissingCopyMeta`]
    /// if some node is not fully annotated in `map`.
    pub fn new(
        g: &'a Ddg,
        machine: &'a MachineSpec,
        map: &'a ClusterMap,
    ) -> Result<Self, ScheduleError> {
        let analysis = LoopAnalysis::compute(g);
        Self::build(g, machine, map, AnalysisRef::Owned(analysis))
    }

    /// Build a context around an analysis the caller already computed for
    /// this exact graph (it must be fresh: recompute it after any graph
    /// mutation).
    ///
    /// # Errors
    ///
    /// As [`SchedContext::new`].
    pub fn with_analysis(
        g: &'a Ddg,
        machine: &'a MachineSpec,
        map: &'a ClusterMap,
        analysis: &'a LoopAnalysis,
    ) -> Result<Self, ScheduleError> {
        debug_assert_eq!(analysis.node_count(), g.node_count());
        Self::build(g, machine, map, AnalysisRef::Borrowed(analysis))
    }

    fn build(
        g: &'a Ddg,
        machine: &'a MachineSpec,
        map: &'a ClusterMap,
        analysis: AnalysisRef<'a>,
    ) -> Result<Self, ScheduleError> {
        let n = g.node_count();
        let mut requests = Vec::with_capacity(n);
        let mut conflict_lane = Vec::with_capacity(n);
        for node in g.node_ids() {
            requests.push(slot_request(g, map, node)?);
            conflict_lane.push(conflict_index(g.op(node).kind) as u8);
        }
        Ok(SchedContext {
            g,
            machine,
            map,
            analysis,
            requests,
            conflict_lane,
            mrt: TimeMrt::new(machine, 1),
            time: vec![None; n],
            prev_time: vec![0; n],
            ever_scheduled: vec![false; n],
            evicted: Vec::new(),
            stats: AttemptStats::default(),
        })
    }

    /// The analysis driving the priority order.
    pub fn analysis(&self) -> &LoopAnalysis {
        match &self.analysis {
            AnalysisRef::Owned(a) => a,
            AnalysisRef::Borrowed(a) => a,
        }
    }

    /// The machine this context schedules for.
    pub fn machine(&self) -> &MachineSpec {
        self.machine
    }

    /// The cluster annotation this context schedules under.
    pub fn map(&self) -> &ClusterMap {
        self.map
    }

    /// Statistics accumulated over every attempt so far (deterministic:
    /// pure decision counts, no timing — see [`AttemptStats`]).
    pub fn stats(&self) -> AttemptStats {
        self.stats
    }

    /// Return the accumulated statistics and reset them to zero.
    pub fn take_stats(&mut self) -> AttemptStats {
        std::mem::take(&mut self.stats)
    }

    /// Attempt a modulo schedule at exactly `ii` (Rau's iterative modulo
    /// scheduler). Decision-for-decision identical to
    /// [`crate::iterative_schedule`]; every attempt starts from fully
    /// reset state, so earlier attempts never leak into later ones.
    ///
    /// # Errors
    ///
    /// [`SchedFailure::BudgetExhausted`] when the placement budget runs
    /// out, [`SchedFailure::ResourceImpossible`] when some node's request
    /// can never be granted on this machine; both carry the blocking
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn attempt(&mut self, ii: u32, config: SchedulerConfig) -> Result<Schedule, SchedFailure> {
        let analysis: &LoopAnalysis = match &self.analysis {
            AnalysisRef::Owned(a) => a,
            AnalysisRef::Borrowed(a) => a,
        };
        self.stats.attempts += 1;
        let n = self.requests.len();
        if n == 0 {
            return Ok(Schedule::new(ii, HashMap::new()));
        }

        // Reset all per-attempt state; no allocation, the MRT reset is
        // O(1) via its epoch counter.
        self.mrt.reset(ii);
        self.time.fill(None);
        self.prev_time.fill(0);
        self.ever_scheduled.fill(false);
        let time = &mut self.time;
        let prev_time = &mut self.prev_time;
        let ever_scheduled = &mut self.ever_scheduled;
        let mrt = &mut self.mrt;
        let evicted = &mut self.evicted;
        let requests = &self.requests;
        let conflict_lane = &self.conflict_lane;
        let stats = &mut self.stats;
        let order = analysis.order();

        let mut unscheduled = n;
        let mut budget = u64::from(config.budget_factor) * n as u64;
        let ii_i = i64::from(ii);
        // The ready cursor: every order position below it is scheduled, so
        // the highest-priority unscheduled node is found by advancing past
        // scheduled entries instead of rescanning the whole order. Evicted
        // or displaced nodes pull the cursor back to their position.
        let mut cursor = 0usize;

        while unscheduled > 0 {
            // Highest-priority unscheduled node. (Found before the budget
            // check — the cursor advance has no scheduling effect — so a
            // budget exhaustion can name the operation it was blocked on.)
            while cursor < n && time[order[cursor].index()].is_some() {
                cursor += 1;
            }
            debug_assert!(cursor < n, "unscheduled > 0");
            let node = order[cursor];
            let vi = node.index();

            if budget == 0 {
                return Err(SchedFailure::BudgetExhausted { ii, node });
            }
            budget -= 1;

            // Earliest start from scheduled predecessors.
            let mut estart: i64 = 0;
            for e in analysis.preds(node) {
                if let Some(tp) = time[e.other.index()] {
                    estart = estart.max(tp + i64::from(e.latency) - i64::from(e.distance) * ii_i);
                }
            }

            // Scan one full II window for a conflict-free slot.
            let mut chosen: Option<i64> = None;
            for t in estart..estart + ii_i {
                let row = t.rem_euclid(ii_i) as u32;
                match mrt.try_place_quiet(node, row, &requests[vi]) {
                    PlaceOutcome::Placed => {
                        chosen = Some(t);
                        break;
                    }
                    PlaceOutcome::Blocked => {
                        stats.conflicts[conflict_lane[vi] as usize] += 1;
                    }
                    PlaceOutcome::Impossible => {
                        // Structurally impossible on this machine.
                        return Err(SchedFailure::ResourceImpossible { ii, node });
                    }
                }
            }

            let t = match chosen {
                Some(t) => t,
                None => {
                    // Forced placement (Rau): first attempt at estart,
                    // later attempts strictly after the previous slot to
                    // guarantee forward progress.
                    stats.window_rejections += 1;
                    let slot = if ever_scheduled[vi] {
                        estart.max(prev_time[vi] + 1)
                    } else {
                        estart
                    };
                    let row = slot.rem_euclid(ii_i) as u32;
                    evicted.clear();
                    mrt.place_evicting_into(node, row, &requests[vi], evicted);
                    for &ev in evicted.iter() {
                        if time[ev.index()].take().is_some() {
                            unscheduled += 1;
                            stats.backtracks += 1;
                            cursor = cursor.min(analysis.position(ev));
                        }
                    }
                    slot
                }
            };

            time[vi] = Some(t);
            prev_time[vi] = t;
            ever_scheduled[vi] = true;
            unscheduled -= 1;
            stats.placements += 1;

            // Displace scheduled successors whose dependence is now
            // violated.
            for e in analysis.succs(node) {
                if e.other == node {
                    continue; // self edge: t >= t + lat - dist*ii holds iff
                              // lat <= dist*ii, guaranteed by ii >= RecMII
                }
                let di = e.other.index();
                if let Some(td) = time[di] {
                    if td < t + i64::from(e.latency) - i64::from(e.distance) * ii_i {
                        mrt.remove(e.other);
                        time[di] = None;
                        unscheduled += 1;
                        stats.backtracks += 1;
                        cursor = cursor.min(analysis.position(e.other));
                    }
                }
            }
        }

        let result: HashMap<NodeId, i64> = self
            .g
            .node_ids()
            .map(|v| (v, self.time[v.index()].expect("all scheduled")))
            .collect();
        Ok(Schedule::new(ii, result))
    }

    /// Try `min_ii`, `min_ii + 1`, ... up to `max_ii` until one II
    /// succeeds, amortizing all context state across the sweep. Returns
    /// the same schedule as running [`crate::iterative_schedule`] per II.
    ///
    /// # Errors
    ///
    /// [`SchedFailure::Exhausted`] carrying the last attempt's reason
    /// when no II in the range succeeds.
    pub fn schedule_in_range(
        &mut self,
        min_ii: u32,
        max_ii: u32,
        config: SchedulerConfig,
    ) -> Result<Schedule, SchedFailure> {
        let min_ii = min_ii.max(1);
        let mut last = None;
        for ii in min_ii..=max_ii {
            match self.attempt(ii, config) {
                Ok(s) => return Ok(s),
                Err(f) => last = Some(Box::new(f)),
            }
        }
        Err(SchedFailure::Exhausted {
            min_ii,
            max_ii,
            last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{iterative_schedule, max_ii_bound};
    use crate::schedule::{unified_map, validate_schedule};
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn fig6() -> Ddg {
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        g
    }

    #[test]
    fn context_sweep_matches_fresh_per_ii() {
        let g = fig6();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let cap = max_ii_bound(&g, 1);
        let mut ctx = SchedContext::new(&g, &m, &map).unwrap();
        let swept = ctx.schedule_in_range(1, cap, cfg()).unwrap();
        let fresh = (1..=cap)
            .find_map(|ii| iterative_schedule(&g, &m, &map, ii, cfg()).ok())
            .unwrap();
        assert_eq!(swept, fresh);
        assert_eq!(validate_schedule(&g, &m, &map, &swept), Ok(()));
    }

    #[test]
    fn repeated_attempts_are_deterministic() {
        let g = fig6();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut ctx = SchedContext::new(&g, &m, &map).unwrap();
        let a = ctx.attempt(4, cfg()).unwrap();
        let b = ctx.attempt(4, cfg()).unwrap();
        assert_eq!(a, b);
        // A failing attempt in between must not perturb later ones.
        assert!(matches!(
            ctx.attempt(1, cfg()),
            Err(SchedFailure::BudgetExhausted { ii: 1, .. })
        ));
        let c = ctx.attempt(4, cfg()).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn empty_graph_schedules() {
        let g = Ddg::new("empty");
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut ctx = SchedContext::new(&g, &m, &map).unwrap();
        assert!(ctx.attempt(1, cfg()).unwrap().is_empty());
    }

    #[test]
    fn external_analysis_is_reusable() {
        let g = fig6();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let la = clasp_ddg::LoopAnalysis::compute(&g);
        let mut ctx = SchedContext::with_analysis(&g, &m, &map, &la).unwrap();
        let s = ctx.schedule_in_range(1, 16, cfg()).unwrap();
        assert_eq!(s.ii(), 4);
        assert_eq!(ctx.analysis().order().len(), 6);
    }

    #[test]
    fn missing_assignment_errors() {
        let mut g = Ddg::new("naked");
        g.add(OpKind::IntAlu);
        let m = presets::unified_gp(2);
        let map = ClusterMap::new();
        assert!(matches!(
            SchedContext::new(&g, &m, &map),
            Err(ScheduleError::MissingAssignment(_))
        ));
    }
}
