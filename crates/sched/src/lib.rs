//! # clasp-sched — iterative modulo scheduling
//!
//! The "phase 2" scheduler of the CLASP reproduction of Nystrom &
//! Eichenberger (MICRO 1998): an implementation of Rau's iterative modulo
//! scheduler (MICRO-27, 1994) whose priority function is the swing
//! ordering. It is deliberately ignorant of clustering: cluster
//! assignments and copy transport arrive pre-computed in a
//! [`clasp_mrt::ClusterMap`], exactly as the paper prescribes.
//!
//! - [`iterative_schedule`]: one attempt at a fixed II;
//! - [`schedule_in_range`]: search upward over II;
//! - [`schedule_unified`]: the unified-machine baseline the paper compares
//!   every clustered result against;
//! - [`validate_schedule`]: independent checker for dependence and
//!   resource correctness.
//!
//! Every scheduling entry point returns `Result<Schedule, SchedFailure>`:
//! a failed attempt names its reason (budget exhausted, window
//! infeasible, unsatisfiable resource request) and the blocking node, so
//! II-escalation decisions upstream are explainable.
//!
//! # Examples
//!
//! ```
//! use clasp_ddg::{Ddg, OpKind};
//! use clasp_machine::presets;
//! use clasp_sched::{schedule_unified, SchedulerConfig};
//!
//! let mut g = Ddg::new("acc");
//! let a = g.add(OpKind::FpAdd);
//! g.add_dep_carried(a, a, 1); // accumulator recurrence
//! let m = presets::unified_gp(8);
//! let s = schedule_unified(&g, &m, SchedulerConfig::default()).unwrap();
//! assert_eq!(s.ii(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod context;
mod failure;
mod iterative;
mod schedule;
mod stats;
mod swing;

pub use context::SchedContext;
pub use failure::SchedFailure;
pub use iterative::{
    iterative_schedule, max_ii_bound, schedule_in_range, schedule_unified, SchedulerConfig,
};
pub use schedule::{slot_request, unified_map, validate_schedule, Schedule, ScheduleError};
pub use stats::{AttemptStats, CONFLICT_CLASSES};
pub use swing::{schedule_with, schedule_with_stats, swing_schedule, SchedulerKind};
