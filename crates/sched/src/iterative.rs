//! Rau's iterative modulo scheduler (MICRO-27, 1994), driven by the swing
//! ordering priority.
//!
//! The scheduler is cluster-agnostic in exactly the way the paper requires
//! of "phase 2": it reads cluster assignments and copy metadata from a
//! [`ClusterMap`] and turns them into resource requests, but never makes a
//! clustering decision itself.
//!
//! The algorithm lives in [`SchedContext::attempt`]; the free functions
//! here are convenience wrappers that build a fresh context per call.
//! Callers sweeping many IIs should hold one [`SchedContext`] instead —
//! [`schedule_in_range`] and [`schedule_unified`] already do.

use crate::context::SchedContext;
use crate::failure::SchedFailure;
use crate::schedule::{unified_map, Schedule};
use clasp_ddg::Ddg;
use clasp_machine::MachineSpec;
use clasp_mrt::ClusterMap;

/// Tuning knobs for the iterative scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Total placement budget as a multiple of the node count; exhausting
    /// it fails the attempt at this II (Rau's `budget_ratio`).
    pub budget_factor: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Rau reports budget ratios of a few units sufficing with a
        // height-based priority; the swing-order priority displaces a
        // little more on long-latency chains, so the default is sized for
        // the worst loops observed in the corpus (a handful need ~20x).
        SchedulerConfig { budget_factor: 24 }
    }
}

/// Attempt a modulo schedule of the annotated graph `g` on `machine` at
/// exactly the initiation interval `ii`.
///
/// Every node must be assigned in `map` (copies with metadata).
///
/// # Errors
///
/// A [`SchedFailure`] naming the blocking node: budget exhaustion, an
/// unsatisfiable resource request, or an unusable annotation.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
/// use clasp_sched::{iterative_schedule, unified_map, SchedulerConfig};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let m = presets::unified_gp(2);
/// let map = unified_map(&g, &m);
/// let s = iterative_schedule(&g, &m, &map, 1, SchedulerConfig::default()).unwrap();
/// assert!(s.start(b).unwrap() >= s.start(a).unwrap() + 2);
/// ```
pub fn iterative_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> Result<Schedule, SchedFailure> {
    let mut ctx = SchedContext::new(g, machine, map).map_err(SchedFailure::Invalid)?;
    ctx.attempt(ii, config)
}

/// Schedule `g` on `machine` under `map`, trying `min_ii`, `min_ii + 1`,
/// ... up to `max_ii` until one II succeeds. One [`SchedContext`] is
/// amortized over the whole sweep; the result is identical to attempting
/// each II with [`iterative_schedule`].
///
/// # Errors
///
/// [`SchedFailure::Exhausted`] (carrying the last attempt's reason) if
/// every II in the range fails, [`SchedFailure::Invalid`] if the
/// annotation is unusable.
pub fn schedule_in_range(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    min_ii: u32,
    max_ii: u32,
    config: SchedulerConfig,
) -> Result<Schedule, SchedFailure> {
    let mut ctx = SchedContext::new(g, machine, map).map_err(SchedFailure::Invalid)?;
    ctx.schedule_in_range(min_ii, max_ii, config)
}

/// Schedule a copy-free loop on a unified machine: computes `MII =
/// max(RecMII, ResMII)` and searches upward. This is the paper's baseline
/// ("an equally wide non-clustered machine").
///
/// # Errors
///
/// Fails only on pathological inputs: [`SchedFailure::MiiUnbounded`]
/// when some operation kind has no unit anywhere, or
/// [`SchedFailure::Exhausted`] when every II up to [`max_ii_bound`]
/// fails.
///
/// # Panics
///
/// Panics if `machine` is not unified or `g` contains copies.
pub fn schedule_unified(
    g: &Ddg,
    machine: &MachineSpec,
    config: SchedulerConfig,
) -> Result<Schedule, SchedFailure> {
    let map = unified_map(g, machine);
    let mii = machine.mii(g);
    if mii == u32::MAX {
        return Err(SchedFailure::MiiUnbounded);
    }
    let max_ii = max_ii_bound(g, mii);
    schedule_in_range(g, machine, &map, mii, max_ii, config)
}

/// An upper bound on the II search, from the sequential-schedule argument:
/// issuing the nodes one after another, each `max(1, max outgoing
/// latency)` cycles after the previous one, satisfies every dependence
/// (including loop-carried ones) once II reaches that total length, and
/// uses each resource instance at most once per row. So `MII + Σ_v max(1,
/// max outgoing latency of v)` always admits a schedule.
///
/// (The seed used `MII + Σ all edge latencies + node count`, which this
/// bound never exceeds; a tighter cap means exhaustion fails faster.)
pub fn max_ii_bound(g: &Ddg, mii: u32) -> u32 {
    let seq: u32 = g
        .node_ids()
        .map(|v| {
            g.succ_edges(v)
                .map(|(_, e)| e.latency)
                .max()
                .unwrap_or(0)
                .max(1)
        })
        .sum();
    mii.saturating_add(seq).max(mii.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate_schedule;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    #[test]
    fn empty_graph_schedules() {
        let g = Ddg::new("empty");
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn chain_on_unified_machine() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::FpAdd);
        let d = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 1); // 4 ops, width 4, no recurrence
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn recurrence_constrains_ii() {
        let mut g = Ddg::new("rec");
        let a = g.add(OpKind::FpAdd);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1); // RecMII = 2
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 2);
    }

    #[test]
    fn resource_constrains_ii() {
        let mut g = Ddg::new("res");
        let ops: Vec<_> = (0..6).map(|_| g.add(OpKind::IntAlu)).collect();
        // Independent ops; width 2 -> II = 3.
        let m = presets::unified_gp(2);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        let _ = ops;
    }

    #[test]
    fn fs_machine_respects_classes() {
        let mut g = Ddg::new("fs");
        let l1 = g.add(OpKind::Load);
        let l2 = g.add(OpKind::Load);
        let f = g.add(OpKind::FpAdd);
        g.add_dep(l1, f);
        g.add_dep(l2, f);
        // One memory unit: two loads need II >= 2.
        let m = clasp_machine::MachineSpec::new(
            "fs1",
            vec![clasp_machine::ClusterSpec::specialized(1, 1, 1)],
            clasp_machine::Interconnect::None,
        );
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 2);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn figure6_on_wide_machine_achieves_recmii() {
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        let m = presets::unified_gp(2);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 4); // RecMII 4 dominates ResMII 3
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn self_recurrence_schedules_at_ratio() {
        let mut g = Ddg::new("self");
        let a = g.add(OpKind::FpMult); // lat 3
        g.add_dep_carried(a, a, 1);
        let m = presets::unified_gp(1);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
    }

    #[test]
    fn impossible_on_machine_returns_none() {
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        let m = clasp_machine::MachineSpec::new(
            "nofp",
            vec![clasp_machine::ClusterSpec::specialized(1, 1, 0)],
            clasp_machine::Interconnect::None,
        );
        assert_eq!(
            schedule_unified(&g, &m, cfg()),
            Err(SchedFailure::MiiUnbounded)
        );
    }

    #[test]
    fn clustered_copy_scheduling() {
        use clasp_machine::ClusterId;
        // a on C0, copy, b on C1.
        let mut g = Ddg::new("cross");
        let a = g.add(OpKind::IntAlu);
        let cp = g.add(OpKind::Copy);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, cp);
        g.add_dep(cp, b);
        let m = presets::two_cluster_gp(2, 1);
        let mut map = ClusterMap::new();
        map.assign(a, ClusterId(0));
        map.assign(cp, ClusterId(0));
        map.set_copy_meta(
            cp,
            clasp_mrt::CopyMeta {
                src: ClusterId(0),
                targets: vec![ClusterId(1)],
                link: None,
            },
        );
        map.assign(b, ClusterId(1));
        let s = iterative_schedule(&g, &m, &map, 1, cfg()).unwrap();
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        // Copy after producer, consumer after copy.
        assert!(s.start(cp).unwrap() > s.start(a).unwrap());
        assert!(s.start(b).unwrap() > s.start(cp).unwrap());
    }

    #[test]
    fn tight_budget_fails_gracefully() {
        let mut g = Ddg::new("big");
        let ops: Vec<_> = (0..20).map(|_| g.add(OpKind::IntAlu)).collect();
        for w in ops.windows(2) {
            g.add_dep(w[0], w[1]);
        }
        let m = presets::unified_gp(1);
        let failed = iterative_schedule(
            &g,
            &m,
            &unified_map(&g, &m),
            20,
            SchedulerConfig { budget_factor: 0 },
        );
        assert!(matches!(
            failed,
            Err(SchedFailure::BudgetExhausted { ii: 20, .. })
        ));
    }

    #[test]
    fn schedule_in_range_finds_smallest_feasible() {
        let mut g = Ddg::new("six");
        for _ in 0..6 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let s = schedule_in_range(&g, &m, &map, 1, 10, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
    }

    #[test]
    fn dense_recurrent_loop_validates() {
        // A harder mix: two recurrences plus parallel work on FS units.
        let mut g = Ddg::new("hard");
        let l1 = g.add(OpKind::Load);
        let m1 = g.add(OpKind::FpMult);
        let a1 = g.add(OpKind::FpAdd);
        let s1 = g.add(OpKind::Store);
        let i1 = g.add(OpKind::IntAlu);
        let i2 = g.add(OpKind::IntAlu);
        g.add_dep(l1, m1);
        g.add_dep(m1, a1);
        g.add_dep(a1, s1);
        g.add_dep_carried(a1, a1, 1); // accumulator
        g.add_dep(i1, l1);
        g.add_dep(i2, i1);
        g.add_dep_carried(i1, i2, 1);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        assert_eq!(s.ii(), 2); // i1/i2 recurrence: 1+1 over 1
    }

    #[test]
    fn max_ii_bound_is_tighter_than_seed_formula() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load); // lat 2
        let b = g.add(OpKind::FpMult); // lat 3
        let c = g.add(OpKind::FpDiv); // lat 8
        let d = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        // Sequential-length bound: 2 + 3 + 9 + 1 = 15, plus mii 1 = 16.
        assert_eq!(max_ii_bound(&g, 1), 16);
        // Seed formula was mii + total latency + node count = 1 + 14 + 4.
        let seed = 1 + 14 + 4;
        assert!(max_ii_bound(&g, 1) <= seed);
    }

    #[test]
    fn max_ii_bound_always_exceeds_mii() {
        let g = Ddg::new("empty");
        assert_eq!(max_ii_bound(&g, 7), 8);
    }

    #[test]
    fn bound_is_schedulable_on_one_wide_machine() {
        // The sequential-schedule argument: at II = max_ii_bound every
        // loop fits even on a single GP unit, so the search never
        // exhausts spuriously.
        let mut g = Ddg::new("mix");
        let l = g.add(OpKind::Load);
        let m1 = g.add(OpKind::FpMult);
        let acc = g.add(OpKind::FpAdd);
        let st = g.add(OpKind::Store);
        let i1 = g.add(OpKind::IntAlu);
        g.add_dep(l, m1);
        g.add_dep(m1, acc);
        g.add_dep_carried(acc, acc, 1);
        g.add_dep(acc, st);
        g.add_dep(i1, l);
        g.add_dep_carried(st, i1, 2);
        let m = presets::unified_gp(1);
        let mii = m.mii(&g);
        let cap = max_ii_bound(&g, mii);
        let map = unified_map(&g, &m);
        let s = iterative_schedule(&g, &m, &map, cap, cfg()).unwrap();
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }
}
