//! Rau's iterative modulo scheduler (MICRO-27, 1994), driven by the swing
//! ordering priority.
//!
//! The scheduler is cluster-agnostic in exactly the way the paper requires
//! of "phase 2": it reads cluster assignments and copy metadata from a
//! [`ClusterMap`] and turns them into resource requests, but never makes a
//! clustering decision itself.

use crate::schedule::{slot_request, unified_map, Schedule};
use clasp_ddg::{swing_order, Ddg, NodeId};
use clasp_machine::MachineSpec;
use clasp_mrt::{ClusterMap, TimeMrt};
use std::collections::HashMap;

/// Tuning knobs for the iterative scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Total placement budget as a multiple of the node count; exhausting
    /// it fails the attempt at this II (Rau's `budget_ratio`).
    pub budget_factor: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Rau reports budget ratios of a few units sufficing with a
        // height-based priority; the swing-order priority displaces a
        // little more on long-latency chains, so the default is sized for
        // the worst loops observed in the corpus (a handful need ~20x).
        SchedulerConfig { budget_factor: 24 }
    }
}

/// Attempt a modulo schedule of the annotated graph `g` on `machine` at
/// exactly the initiation interval `ii`.
///
/// Every node must be assigned in `map` (copies with metadata). Returns
/// `None` if the budget is exhausted or some node cannot execute on its
/// assigned cluster.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
/// use clasp_sched::{iterative_schedule, unified_map, SchedulerConfig};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let m = presets::unified_gp(2);
/// let map = unified_map(&g, &m);
/// let s = iterative_schedule(&g, &m, &map, 1, SchedulerConfig::default()).unwrap();
/// assert!(s.start(b).unwrap() >= s.start(a).unwrap() + 2);
/// ```
pub fn iterative_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> Option<Schedule> {
    let n = g.node_count();
    if n == 0 {
        return Some(Schedule::new(ii, HashMap::new()));
    }
    // Priority: position in the swing order (assignment order).
    let order = swing_order(g);
    let mut priority = vec![usize::MAX; n];
    for (pos, &node) in order.iter().enumerate() {
        priority[node.index()] = pos;
    }

    // Pre-build resource requests; bail early if any node is unannotated.
    let mut requests = Vec::with_capacity(n);
    for node in g.node_ids() {
        match slot_request(g, map, node) {
            Ok(r) => requests.push(r),
            Err(_) => return None,
        }
    }

    let mut mrt = TimeMrt::new(machine, ii);
    let mut time: Vec<Option<i64>> = vec![None; n];
    let mut prev_time: Vec<i64> = vec![0; n];
    let mut ever_scheduled = vec![false; n];
    let mut unscheduled = n;
    let mut budget = u64::from(config.budget_factor) * n as u64;
    let ii_i = i64::from(ii);

    while unscheduled > 0 {
        if budget == 0 {
            return None;
        }
        budget -= 1;

        // Highest-priority unscheduled node.
        let node = order
            .iter()
            .copied()
            .find(|v| time[v.index()].is_none())
            .expect("unscheduled > 0");
        let vi = node.index();

        // Earliest start from scheduled predecessors.
        let mut estart: i64 = 0;
        for (_, e) in g.pred_edges(node) {
            if let Some(tp) = time[e.src.index()] {
                estart = estart.max(tp + i64::from(e.latency) - i64::from(e.distance) * ii_i);
            }
        }

        // Scan one full II window for a conflict-free slot.
        let mut chosen: Option<i64> = None;
        for t in estart..estart + ii_i {
            let row = t.rem_euclid(ii_i) as u32;
            match mrt.try_place(node, row, &requests[vi]) {
                Ok(()) => {
                    chosen = Some(t);
                    break;
                }
                Err(c) => {
                    if c.blockers.is_empty() {
                        // Structurally impossible on this machine.
                        return None;
                    }
                }
            }
        }

        let t = match chosen {
            Some(t) => t,
            None => {
                // Forced placement (Rau): first attempt at estart, later
                // attempts strictly after the previous slot to guarantee
                // forward progress.
                let slot = if ever_scheduled[vi] {
                    estart.max(prev_time[vi] + 1)
                } else {
                    estart
                };
                let row = slot.rem_euclid(ii_i) as u32;
                let evicted = mrt.place_evicting(node, row, &requests[vi]);
                for ev in evicted {
                    if time[ev.index()].take().is_some() {
                        unscheduled += 1;
                    }
                }
                slot
            }
        };

        time[vi] = Some(t);
        prev_time[vi] = t;
        ever_scheduled[vi] = true;
        unscheduled -= 1;

        // Displace scheduled successors whose dependence is now violated.
        for (_, e) in g.succ_edges(node) {
            if e.dst == node {
                continue; // self edge: t >= t + lat - dist*ii holds iff
                          // lat <= dist*ii, guaranteed by ii >= RecMII
            }
            let di = e.dst.index();
            if let Some(td) = time[di] {
                if td < t + i64::from(e.latency) - i64::from(e.distance) * ii_i {
                    mrt.remove(e.dst);
                    time[di] = None;
                    unscheduled += 1;
                }
            }
        }
    }

    let result: HashMap<NodeId, i64> = g
        .node_ids()
        .map(|v| (v, time[v.index()].expect("all scheduled")))
        .collect();
    Some(Schedule::new(ii, result))
}

/// Schedule `g` on `machine` under `map`, trying `min_ii`, `min_ii + 1`,
/// ... up to `max_ii` until one II succeeds.
///
/// Returns `None` if every II in the range fails.
pub fn schedule_in_range(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    min_ii: u32,
    max_ii: u32,
    config: SchedulerConfig,
) -> Option<Schedule> {
    (min_ii.max(1)..=max_ii).find_map(|ii| iterative_schedule(g, machine, map, ii, config))
}

/// Schedule a copy-free loop on a unified machine: computes `MII =
/// max(RecMII, ResMII)` and searches upward. This is the paper's baseline
/// ("an equally wide non-clustered machine").
///
/// Returns `None` only for pathological inputs (some operation kind has no
/// unit anywhere, or `max_ii_factor * MII` attempts all fail).
///
/// # Panics
///
/// Panics if `machine` is not unified or `g` contains copies.
pub fn schedule_unified(
    g: &Ddg,
    machine: &MachineSpec,
    config: SchedulerConfig,
) -> Option<Schedule> {
    let map = unified_map(g, machine);
    let mii = machine.mii(g);
    if mii == u32::MAX {
        return None;
    }
    let max_ii = max_ii_bound(g, mii);
    schedule_in_range(g, machine, &map, mii, max_ii, config)
}

/// A generous upper bound on the II search: every loop can be scheduled
/// sequentially, so `MII + total latency + node count` always suffices.
pub fn max_ii_bound(g: &Ddg, mii: u32) -> u32 {
    let total_lat: u32 = g.edges().map(|(_, e)| e.latency).sum();
    mii.saturating_add(total_lat)
        .saturating_add(g.node_count() as u32)
        .max(mii + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate_schedule;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    #[test]
    fn empty_graph_schedules() {
        let g = Ddg::new("empty");
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn chain_on_unified_machine() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::FpAdd);
        let d = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 1); // 4 ops, width 4, no recurrence
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn recurrence_constrains_ii() {
        let mut g = Ddg::new("rec");
        let a = g.add(OpKind::FpAdd);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1); // RecMII = 2
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 2);
    }

    #[test]
    fn resource_constrains_ii() {
        let mut g = Ddg::new("res");
        let ops: Vec<_> = (0..6).map(|_| g.add(OpKind::IntAlu)).collect();
        // Independent ops; width 2 -> II = 3.
        let m = presets::unified_gp(2);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        let _ = ops;
    }

    #[test]
    fn fs_machine_respects_classes() {
        let mut g = Ddg::new("fs");
        let l1 = g.add(OpKind::Load);
        let l2 = g.add(OpKind::Load);
        let f = g.add(OpKind::FpAdd);
        g.add_dep(l1, f);
        g.add_dep(l2, f);
        // One memory unit: two loads need II >= 2.
        let m = clasp_machine::MachineSpec::new(
            "fs1",
            vec![clasp_machine::ClusterSpec::specialized(1, 1, 1)],
            clasp_machine::Interconnect::None,
        );
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 2);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn figure6_on_wide_machine_achieves_recmii() {
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        let m = presets::unified_gp(2);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 4); // RecMII 4 dominates ResMII 3
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn self_recurrence_schedules_at_ratio() {
        let mut g = Ddg::new("self");
        let a = g.add(OpKind::FpMult); // lat 3
        g.add_dep_carried(a, a, 1);
        let m = presets::unified_gp(1);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
    }

    #[test]
    fn impossible_on_machine_returns_none() {
        let mut g = Ddg::new("fp");
        g.add(OpKind::FpAdd);
        let m = clasp_machine::MachineSpec::new(
            "nofp",
            vec![clasp_machine::ClusterSpec::specialized(1, 1, 0)],
            clasp_machine::Interconnect::None,
        );
        assert!(schedule_unified(&g, &m, cfg()).is_none());
    }

    #[test]
    fn clustered_copy_scheduling() {
        use clasp_machine::ClusterId;
        // a on C0, copy, b on C1.
        let mut g = Ddg::new("cross");
        let a = g.add(OpKind::IntAlu);
        let cp = g.add(OpKind::Copy);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, cp);
        g.add_dep(cp, b);
        let m = presets::two_cluster_gp(2, 1);
        let mut map = ClusterMap::new();
        map.assign(a, ClusterId(0));
        map.assign(cp, ClusterId(0));
        map.set_copy_meta(
            cp,
            clasp_mrt::CopyMeta {
                src: ClusterId(0),
                targets: vec![ClusterId(1)],
                link: None,
            },
        );
        map.assign(b, ClusterId(1));
        let s = iterative_schedule(&g, &m, &map, 1, cfg()).unwrap();
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        // Copy after producer, consumer after copy.
        assert!(s.start(cp).unwrap() > s.start(a).unwrap());
        assert!(s.start(b).unwrap() > s.start(cp).unwrap());
    }

    #[test]
    fn tight_budget_fails_gracefully() {
        let mut g = Ddg::new("big");
        let ops: Vec<_> = (0..20).map(|_| g.add(OpKind::IntAlu)).collect();
        for w in ops.windows(2) {
            g.add_dep(w[0], w[1]);
        }
        let m = presets::unified_gp(1);
        let none = iterative_schedule(
            &g,
            &m,
            &unified_map(&g, &m),
            20,
            SchedulerConfig { budget_factor: 0 },
        );
        assert!(none.is_none());
    }

    #[test]
    fn schedule_in_range_finds_smallest_feasible() {
        let mut g = Ddg::new("six");
        for _ in 0..6 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let s = schedule_in_range(&g, &m, &map, 1, 10, cfg()).unwrap();
        assert_eq!(s.ii(), 3);
    }

    #[test]
    fn dense_recurrent_loop_validates() {
        // A harder mix: two recurrences plus parallel work on FS units.
        let mut g = Ddg::new("hard");
        let l1 = g.add(OpKind::Load);
        let m1 = g.add(OpKind::FpMult);
        let a1 = g.add(OpKind::FpAdd);
        let s1 = g.add(OpKind::Store);
        let i1 = g.add(OpKind::IntAlu);
        let i2 = g.add(OpKind::IntAlu);
        g.add_dep(l1, m1);
        g.add_dep(m1, a1);
        g.add_dep(a1, s1);
        g.add_dep_carried(a1, a1, 1); // accumulator
        g.add_dep(i1, l1);
        g.add_dep(i2, i1);
        g.add_dep_carried(i1, i2, 1);
        let m = presets::unified_gp(4);
        let s = schedule_unified(&g, &m, cfg()).unwrap();
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
        assert_eq!(s.ii(), 2); // i1/i2 recurrence: 1+1 over 1
    }
}
