//! The Swing Modulo Scheduler (Llosa et al., PACT 1996), in the
//! "iterative version" the paper's experiments used.
//!
//! SMS walks the swing order and places each node as close as possible to
//! its already-scheduled neighbours, scanning *forward* when predecessors
//! anchor the node, *backward* when successors do, and inside the
//! intersection window when both do — keeping value lifetimes short. The
//! iterative flavour adds Rau-style force-placement with eviction when no
//! slot in the window is free, instead of failing the II outright.

use crate::failure::SchedFailure;
use crate::iterative::SchedulerConfig;
use crate::schedule::{slot_request, Schedule};
use crate::stats::{conflict_index, AttemptStats};
use clasp_ddg::{swing_order, Ddg};
use clasp_machine::MachineSpec;
use clasp_mrt::{ClusterMap, TimeMrt};
use std::collections::HashMap;

/// Which phase-2 scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Rau's iterative modulo scheduler ([`crate::iterative_schedule`]).
    #[default]
    Iterative,
    /// The swing modulo scheduler ([`swing_schedule`]).
    Swing,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Iterative => f.write_str("iterative"),
            SchedulerKind::Swing => f.write_str("swing"),
        }
    }
}

/// Attempt a swing modulo schedule of the annotated graph `g` at exactly
/// `ii`. Like [`crate::iterative_schedule`], cluster assignments and copy
/// metadata are consumed from `map`, never chosen.
///
/// # Errors
///
/// A [`SchedFailure`] naming the blocking node when the placement budget
/// is exhausted or a node cannot execute on its assigned cluster.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
/// use clasp_machine::presets;
/// use clasp_sched::{swing_schedule, unified_map, SchedulerConfig};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let m = presets::unified_gp(2);
/// let map = unified_map(&g, &m);
/// let s = swing_schedule(&g, &m, &map, 1, SchedulerConfig::default()).unwrap();
/// assert!(s.start(b).unwrap() >= s.start(a).unwrap() + 2);
/// ```
pub fn swing_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> Result<Schedule, SchedFailure> {
    swing_schedule_impl(g, machine, map, ii, config, &mut AttemptStats::default())
}

fn swing_schedule_impl(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
    stats: &mut AttemptStats,
) -> Result<Schedule, SchedFailure> {
    stats.attempts += 1;
    let n = g.node_count();
    if n == 0 {
        return Ok(Schedule::new(ii, HashMap::new()));
    }
    let order = swing_order(g);

    let mut requests = Vec::with_capacity(n);
    let mut conflict_lane = Vec::with_capacity(n);
    for node in g.node_ids() {
        match slot_request(g, map, node) {
            Ok(r) => requests.push(r),
            Err(e) => return Err(SchedFailure::Invalid(e)),
        }
        conflict_lane.push(conflict_index(g.op(node).kind));
    }

    let mut mrt = TimeMrt::new(machine, ii);
    let mut time: Vec<Option<i64>> = vec![None; n];
    let mut prev_time: Vec<i64> = vec![0; n];
    let mut ever: Vec<bool> = vec![false; n];
    let mut unscheduled = n;
    let mut budget = u64::from(config.budget_factor).max(1) * n as u64;
    let ii_i = i64::from(ii);

    while unscheduled > 0 {
        // The node lookup has no scheduling effect, so it runs before the
        // budget check: an exhaustion names the operation it blocked on.
        let node = order
            .iter()
            .copied()
            .find(|v| time[v.index()].is_none())
            .expect("unscheduled > 0");
        let vi = node.index();

        if budget == 0 {
            return Err(SchedFailure::BudgetExhausted { ii, node });
        }
        budget -= 1;

        // Anchors from scheduled neighbours.
        let mut estart: Option<i64> = None;
        for (_, e) in g.pred_edges(node) {
            if e.src == node {
                continue;
            }
            if let Some(tp) = time[e.src.index()] {
                let lb = tp + i64::from(e.latency) - i64::from(e.distance) * ii_i;
                estart = Some(estart.map_or(lb, |cur: i64| cur.max(lb)));
            }
        }
        let mut lstart: Option<i64> = None;
        for (_, e) in g.succ_edges(node) {
            if e.dst == node {
                continue;
            }
            if let Some(ts) = time[e.dst.index()] {
                let ub = ts - i64::from(e.latency) + i64::from(e.distance) * ii_i;
                lstart = Some(lstart.map_or(ub, |cur: i64| cur.min(ub)));
            }
        }

        // Candidate scan per the SMS placement rules.
        let candidates: Vec<i64> = match (estart, lstart) {
            (Some(es), None) => (es..es + ii_i).collect(),
            (None, Some(ls)) => {
                let lo = ls - ii_i + 1;
                (lo..=ls).rev().collect()
            }
            (Some(es), Some(ls)) => {
                let hi = ls.min(es + ii_i - 1);
                (es..=hi).collect()
            }
            (None, None) => (0..ii_i).collect(),
        };

        let mut placed_at: Option<i64> = None;
        for t in candidates {
            let row = t.rem_euclid(ii_i) as u32;
            match mrt.try_place(node, row, &requests[vi]) {
                Ok(()) => {
                    placed_at = Some(t);
                    break;
                }
                Err(c) => {
                    if c.blockers.is_empty() {
                        // Structurally impossible on this machine.
                        return Err(SchedFailure::ResourceImpossible { ii, node });
                    }
                    stats.conflicts[conflict_lane[vi]] += 1;
                }
            }
        }

        let t = match placed_at {
            Some(t) => t,
            None => {
                stats.window_rejections += 1;
                if !config.iterative_fallback() {
                    return Err(SchedFailure::WindowInfeasible { ii, node });
                }
                // Iterative fallback: force-place like Rau, evicting the
                // holders, strictly advancing on repeats.
                let base = estart.unwrap_or(0);
                let slot = if ever[vi] {
                    base.max(prev_time[vi] + 1)
                } else {
                    base
                };
                let row = slot.rem_euclid(ii_i) as u32;
                let evicted = mrt.place_evicting(node, row, &requests[vi]);
                for ev in evicted {
                    if time[ev.index()].take().is_some() {
                        unscheduled += 1;
                        stats.backtracks += 1;
                    }
                }
                slot
            }
        };

        time[vi] = Some(t);
        prev_time[vi] = t;
        ever[vi] = true;
        unscheduled -= 1;
        stats.placements += 1;

        // Displace scheduled neighbours whose dependence is now violated
        // (can happen after a backward or forced placement).
        for (_, e) in g.succ_edges(node) {
            if e.dst == node {
                continue;
            }
            let di = e.dst.index();
            if let Some(td) = time[di] {
                if td < t + i64::from(e.latency) - i64::from(e.distance) * ii_i {
                    mrt.remove(e.dst);
                    time[di] = None;
                    unscheduled += 1;
                    stats.backtracks += 1;
                }
            }
        }
        for (_, e) in g.pred_edges(node) {
            if e.src == node {
                continue;
            }
            let pi = e.src.index();
            if let Some(tp) = time[pi] {
                if t < tp + i64::from(e.latency) - i64::from(e.distance) * ii_i {
                    mrt.remove(e.src);
                    time[pi] = None;
                    unscheduled += 1;
                    stats.backtracks += 1;
                }
            }
        }
    }

    let result: HashMap<_, _> = g
        .node_ids()
        .map(|v| (v, time[v.index()].expect("all scheduled")))
        .collect();
    Ok(Schedule::new(ii, result))
}

impl SchedulerConfig {
    /// Whether the swing scheduler may fall back to eviction (the
    /// "iterative version" of SMS the paper used). Always on; exposed as
    /// a method so a future knob can gate it without an API break.
    pub(crate) fn iterative_fallback(self) -> bool {
        true
    }
}

/// Dispatch to the configured phase-2 scheduler at a fixed II.
///
/// # Errors
///
/// The dispatched scheduler's [`SchedFailure`].
pub fn schedule_with(
    kind: SchedulerKind,
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> Result<Schedule, SchedFailure> {
    match kind {
        SchedulerKind::Iterative => crate::iterative_schedule(g, machine, map, ii, config),
        SchedulerKind::Swing => swing_schedule(g, machine, map, ii, config),
    }
}

/// [`schedule_with`], also returning the attempt's [`AttemptStats`] —
/// the hook the pipeline uses to fold scheduler effort into an
/// observability sink. Decision-for-decision identical to
/// [`schedule_with`] (the stats are pure counts; they never influence a
/// placement).
pub fn schedule_with_stats(
    kind: SchedulerKind,
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    ii: u32,
    config: SchedulerConfig,
) -> (Result<Schedule, SchedFailure>, AttemptStats) {
    match kind {
        SchedulerKind::Iterative => match crate::SchedContext::new(g, machine, map) {
            Ok(mut ctx) => {
                let result = ctx.attempt(ii, config);
                (result, ctx.stats())
            }
            Err(e) => (Err(SchedFailure::Invalid(e)), AttemptStats::default()),
        },
        SchedulerKind::Swing => {
            let mut stats = AttemptStats::default();
            let result = swing_schedule_impl(g, machine, map, ii, config, &mut stats);
            (result, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{unified_map, validate_schedule};
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn schedule_unified_swing(g: &Ddg, m: &MachineSpec) -> Option<Schedule> {
        let map = unified_map(g, m);
        let mii = m.mii(g);
        (mii..=crate::max_ii_bound(g, mii))
            .find_map(|ii| swing_schedule(g, m, &map, ii, cfg()).ok())
    }

    #[test]
    fn chain_achieves_mii() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        let m = presets::unified_gp(4);
        let s = schedule_unified_swing(&g, &m).unwrap();
        assert_eq!(s.ii(), 1);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn recurrence_achieves_recmii() {
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        let m = presets::unified_gp(2);
        let s = schedule_unified_swing(&g, &m).unwrap();
        assert_eq!(s.ii(), 4);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn backward_placement_keeps_lifetimes_short() {
        // v's producer scheduled late; a node with only successors
        // scheduled must be placed backward (close to the consumer).
        let mut g = Ddg::new("life");
        let a = g.add(OpKind::Load); // producer
        let b = g.add(OpKind::FpAdd); // consumer
        g.add_dep(a, b);
        let m = presets::unified_gp(4);
        let s = schedule_unified_swing(&g, &m).unwrap();
        // With II=1 both fit; lifetime = gap between producer-ready and
        // consumer-issue must equal exactly zero slack.
        let gap = s.start(b).unwrap() - (s.start(a).unwrap() + 2);
        assert_eq!(gap, 0, "swing should leave no slack on a free machine");
    }

    #[test]
    fn resource_limits_respected() {
        let mut g = Ddg::new("six");
        for _ in 0..6 {
            g.add(OpKind::IntAlu);
        }
        let m = presets::unified_gp(2);
        let s = schedule_unified_swing(&g, &m).unwrap();
        assert_eq!(s.ii(), 3);
        let map = unified_map(&g, &m);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn clustered_graph_with_copies() {
        use clasp_machine::ClusterId;
        use clasp_mrt::CopyMeta;
        let mut g = Ddg::new("cross");
        let a = g.add(OpKind::IntAlu);
        let cp = g.add(OpKind::Copy);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, cp);
        g.add_dep(cp, b);
        let m = presets::two_cluster_gp(2, 1);
        let mut map = ClusterMap::new();
        map.assign(a, ClusterId(0));
        map.assign(cp, ClusterId(0));
        map.set_copy_meta(
            cp,
            CopyMeta {
                src: ClusterId(0),
                targets: vec![ClusterId(1)],
                link: None,
            },
        );
        map.assign(b, ClusterId(1));
        let s = swing_schedule(&g, &m, &map, 1, cfg()).unwrap();
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn agrees_with_iterative_on_achieved_ii() {
        // Both schedulers must find the same (minimal) II on small loops.
        use clasp_loopgen_free::small_corpus;
        for g in small_corpus() {
            let m = presets::unified_gp(4);
            let map = unified_map(&g, &m);
            let mii = m.mii(&g);
            let cap = crate::max_ii_bound(&g, mii);
            let it =
                (mii..=cap).find(|&ii| crate::iterative_schedule(&g, &m, &map, ii, cfg()).is_ok());
            let sw = (mii..=cap).find(|&ii| swing_schedule(&g, &m, &map, ii, cfg()).is_ok());
            let (it, sw) = (it.unwrap(), sw.unwrap());
            assert!(
                sw.abs_diff(it) <= 1,
                "{}: iterative {it} vs swing {sw}",
                g.name()
            );
        }
    }

    /// Tiny local corpus (avoids a dev-dependency cycle with
    /// clasp-loopgen, which depends on clasp-ddg only — but keep this
    /// self-contained regardless).
    mod clasp_loopgen_free {
        use clasp_ddg::{Ddg, OpKind};

        pub fn small_corpus() -> Vec<Ddg> {
            let mut out = Vec::new();
            // Reduction.
            let mut g = Ddg::new("red");
            let l = g.add(OpKind::Load);
            let mu = g.add(OpKind::FpMult);
            let ac = g.add(OpKind::FpAdd);
            g.add_dep(l, mu);
            g.add_dep(mu, ac);
            g.add_dep_carried(ac, ac, 1);
            out.push(g);
            // Parallel lanes.
            let mut g = Ddg::new("par");
            for _ in 0..3 {
                let a = g.add(OpKind::Load);
                let b = g.add(OpKind::FpAdd);
                let c = g.add(OpKind::Store);
                g.add_dep(a, b);
                g.add_dep(b, c);
            }
            out.push(g);
            // Long-latency recurrence.
            let mut g = Ddg::new("div");
            let d = g.add(OpKind::FpDiv);
            let s = g.add(OpKind::FpAdd);
            g.add_dep(d, s);
            g.add_dep_carried(s, d, 1);
            out.push(g);
            out
        }
    }
}
