//! Deterministic per-attempt scheduler statistics.
//!
//! Every count here depends only on the scheduler's decisions — never on
//! wall-clock time or thread interleaving — so totals folded into an
//! observability sink are byte-identical across thread counts (the
//! property the CI determinism gate checks).

use clasp_ddg::OpKind;

/// Labels for [`AttemptStats::conflicts`], in index order: the three
/// functional-unit classes plus the copy-transport layer.
pub const CONFLICT_CLASSES: [&str; 4] = ["memory", "integer", "float", "transport"];

/// Counts accumulated while scheduling: how hard the scheduler worked
/// and where its placements were refused. Accumulates across attempts
/// when reused (e.g. over a [`crate::SchedContext`] II sweep).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttemptStats {
    /// Scheduling attempts (one per II tried).
    pub attempts: u64,
    /// Operations placed, including re-placements after eviction.
    pub placements: u64,
    /// Backtracks: evictions plus successor/predecessor displacements —
    /// every time committed work was undone.
    pub backtracks: u64,
    /// Forced placements taken after a full window scan found no
    /// conflict-free slot.
    pub window_rejections: u64,
    /// MRT conflicts (a candidate slot was occupied) by resource class,
    /// indexed per [`CONFLICT_CLASSES`].
    pub conflicts: [u64; 4],
}

impl AttemptStats {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &AttemptStats) {
        self.attempts += other.attempts;
        self.placements += other.placements;
        self.backtracks += other.backtracks;
        self.window_rejections += other.window_rejections;
        for (a, b) in self.conflicts.iter_mut().zip(other.conflicts.iter()) {
            *a += b;
        }
    }

    /// Total conflicts across every resource class.
    pub fn conflict_total(&self) -> u64 {
        self.conflicts.iter().sum()
    }
}

/// The [`AttemptStats::conflicts`] index for one operation kind: its FU
/// class, or the transport lane for copies (which occupy buses/links,
/// not functional units).
pub(crate) fn conflict_index(kind: OpKind) -> usize {
    match kind.fu_class() {
        Some(class) => class.index(),
        None => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = AttemptStats {
            attempts: 1,
            placements: 2,
            backtracks: 3,
            window_rejections: 4,
            conflicts: [1, 0, 2, 5],
        };
        let b = AttemptStats {
            attempts: 10,
            placements: 20,
            backtracks: 30,
            window_rejections: 40,
            conflicts: [0, 7, 1, 1],
        };
        a.merge(&b);
        assert_eq!(a.attempts, 11);
        assert_eq!(a.placements, 22);
        assert_eq!(a.backtracks, 33);
        assert_eq!(a.window_rejections, 44);
        assert_eq!(a.conflicts, [1, 7, 3, 6]);
        assert_eq!(a.conflict_total(), 17);
    }

    #[test]
    fn copies_map_to_the_transport_lane() {
        assert_eq!(conflict_index(OpKind::Copy), 3);
        assert_eq!(conflict_index(OpKind::Load), 0);
        assert_eq!(conflict_index(OpKind::IntAlu), 1);
        assert_eq!(conflict_index(OpKind::FpAdd), 2);
    }
}
