//! Modulo-schedule result type and validation.

use clasp_ddg::{Ddg, NodeId, OpKind};
use clasp_machine::{ClusterId, MachineSpec};
use clasp_mrt::{ClusterMap, SlotRequest, TimeMrt};
use std::collections::HashMap;

/// A complete modulo schedule: an issue cycle for every node of the
/// working graph at a fixed initiation interval.
///
/// Cycle `t` maps to kernel row `t mod II` and stage `t / II`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    ii: u32,
    time: HashMap<NodeId, i64>,
}

impl Schedule {
    /// Build a schedule from parts (used by schedulers; prefer reading
    /// schedules produced by [`crate::iterative_schedule`]).
    pub fn new(ii: u32, time: HashMap<NodeId, i64>) -> Self {
        assert!(ii > 0, "II must be positive");
        Schedule { ii, time }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Issue cycle of `n`, if scheduled.
    pub fn start(&self, n: NodeId) -> Option<i64> {
        self.time.get(&n).copied()
    }

    /// Kernel row (`start mod II`) of `n`.
    pub fn kernel_row(&self, n: NodeId) -> Option<u32> {
        self.start(n)
            .map(|t| (t.rem_euclid(i64::from(self.ii))) as u32)
    }

    /// Pipeline stage (`start div II`) of `n`.
    pub fn stage(&self, n: NodeId) -> Option<i64> {
        self.start(n).map(|t| t.div_euclid(i64::from(self.ii)))
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Number of pipeline stages (max stage - min stage + 1); 0 if empty.
    pub fn stage_count(&self) -> i64 {
        let stages: Vec<i64> = self.time.keys().filter_map(|&n| self.stage(n)).collect();
        match (stages.iter().min(), stages.iter().max()) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => 0,
        }
    }

    /// Iterate over `(node, cycle)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        self.time.iter().map(|(&n, &t)| (n, t))
    }
}

/// Errors found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A node has no scheduled cycle.
    Unscheduled {
        /// The unscheduled node.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
    },
    /// A dependence `src -> dst` is violated:
    /// `t(dst) < t(src) + latency - distance * II`.
    DependenceViolated {
        /// Producer.
        src: NodeId,
        /// The producer's operation kind.
        src_op: OpKind,
        /// Cycle the producer issues in.
        src_cycle: i64,
        /// Consumer.
        dst: NodeId,
        /// The consumer's operation kind.
        dst_op: OpKind,
        /// Cycle the consumer issues in.
        dst_cycle: i64,
        /// Slack (negative by how many cycles).
        slack: i64,
    },
    /// Two or more nodes overuse a resource in some kernel row.
    ResourceOveruse {
        /// The node that failed to place.
        node: NodeId,
        /// Its operation kind.
        op: OpKind,
        /// The kernel row (cycle mod II) it could not fit in.
        row: u32,
    },
    /// A node is assigned to no cluster in the map.
    MissingAssignment(NodeId),
    /// A copy node is missing its transport metadata.
    MissingCopyMeta(NodeId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Unscheduled { node, op } => {
                write!(f, "{op} {node} has no scheduled cycle")
            }
            ScheduleError::DependenceViolated {
                src,
                src_op,
                src_cycle,
                dst,
                dst_op,
                dst_cycle,
                slack,
            } => {
                write!(
                    f,
                    "dependence {src_op} {src} (cycle {src_cycle}) -> {dst_op} {dst} \
                     (cycle {dst_cycle}) violated by {} cycles",
                    -slack
                )
            }
            ScheduleError::ResourceOveruse { node, op, row } => {
                write!(f, "{op} {node} overuses a resource in kernel row {row}")
            }
            ScheduleError::MissingAssignment(n) => write!(f, "{n} has no cluster"),
            ScheduleError::MissingCopyMeta(n) => write!(f, "copy {n} has no metadata"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The resource request a node makes, derived from its kind and cluster
/// annotation.
pub fn slot_request(g: &Ddg, map: &ClusterMap, n: NodeId) -> Result<SlotRequest, ScheduleError> {
    let kind = g.op(n).kind;
    if kind.is_copy() {
        let meta = map.copy_meta(n).ok_or(ScheduleError::MissingCopyMeta(n))?;
        Ok(SlotRequest::Copy {
            src: meta.src,
            targets: meta.targets.clone(),
            link: meta.link,
        })
    } else {
        let cluster = map
            .cluster_of(n)
            .ok_or(ScheduleError::MissingAssignment(n))?;
        Ok(SlotRequest::Fu { cluster, kind })
    }
}

/// Check that `sched` is a valid modulo schedule of `g` on `machine` under
/// the cluster annotation `map`: every node scheduled, every dependence
/// satisfied at this II, and all kernel-row resource use within capacity.
///
/// # Errors
///
/// The first violation found, as a [`ScheduleError`].
pub fn validate_schedule(
    g: &Ddg,
    machine: &MachineSpec,
    map: &ClusterMap,
    sched: &Schedule,
) -> Result<(), ScheduleError> {
    let ii = i64::from(sched.ii());
    for n in g.node_ids() {
        if sched.start(n).is_none() {
            return Err(ScheduleError::Unscheduled {
                node: n,
                op: g.op(n).kind,
            });
        }
    }
    for (_, e) in g.edges() {
        let ts = sched.start(e.src).expect("checked above");
        let td = sched.start(e.dst).expect("checked above");
        let slack = td - (ts + i64::from(e.latency) - i64::from(e.distance) * ii);
        if slack < 0 {
            return Err(ScheduleError::DependenceViolated {
                src: e.src,
                src_op: g.op(e.src).kind,
                src_cycle: ts,
                dst: e.dst,
                dst_op: g.op(e.dst).kind,
                dst_cycle: td,
                slack,
            });
        }
    }
    // Replay all placements into a fresh MRT.
    let mut mrt = TimeMrt::new(machine, sched.ii());
    for n in g.node_ids() {
        let req = slot_request(g, map, n)?;
        let row = sched.kernel_row(n).expect("checked above");
        if mrt.try_place(n, row, &req).is_err() {
            return Err(ScheduleError::ResourceOveruse {
                node: n,
                op: g.op(n).kind,
                row,
            });
        }
    }
    Ok(())
}

/// Build the trivial cluster map for a unified (single-cluster) machine:
/// every node on cluster 0, no copies.
///
/// # Panics
///
/// Panics if `g` contains copy nodes (a unified loop has none) or
/// `machine` is not unified.
pub fn unified_map(g: &Ddg, machine: &MachineSpec) -> ClusterMap {
    assert!(machine.is_unified(), "machine must be unified");
    let mut map = ClusterMap::new();
    for (n, op) in g.nodes() {
        assert!(
            !matches!(op.kind, OpKind::Copy),
            "unified loops contain no copies"
        );
        map.assign(n, ClusterId(0));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_machine::presets;

    fn tiny() -> (Ddg, NodeId, NodeId) {
        let mut g = Ddg::new("tiny");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpAdd);
        g.add_dep(a, b);
        (g, a, b)
    }

    #[test]
    fn schedule_accessors() {
        let mut t = HashMap::new();
        t.insert(NodeId(0), 0i64);
        t.insert(NodeId(1), 5i64);
        let s = Schedule::new(2, t);
        assert_eq!(s.ii(), 2);
        assert_eq!(s.kernel_row(NodeId(1)), Some(1));
        assert_eq!(s.stage(NodeId(1)), Some(2));
        assert_eq!(s.stage_count(), 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn validate_good_schedule() {
        let (g, a, b) = tiny();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, 2i64);
        let s = Schedule::new(1, t);
        assert_eq!(validate_schedule(&g, &m, &map, &s), Ok(()));
    }

    #[test]
    fn validate_catches_dependence_violation() {
        let (g, a, b) = tiny();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, 1i64); // load latency is 2
        let s = Schedule::new(1, t);
        assert!(matches!(
            validate_schedule(&g, &m, &map, &s),
            Err(ScheduleError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn validate_catches_resource_overuse() {
        let (g, a, b) = tiny();
        let m = presets::unified_gp(1); // one unit
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, 2i64); // row 0 at II=2... use II=2: rows 0 and 0
        let s = Schedule::new(2, t);
        assert!(matches!(
            validate_schedule(&g, &m, &map, &s),
            Err(ScheduleError::ResourceOveruse { .. })
        ));
    }

    #[test]
    fn validate_catches_unscheduled() {
        let (g, a, _) = tiny();
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        let s = Schedule::new(1, t);
        assert!(matches!(
            validate_schedule(&g, &m, &map, &s),
            Err(ScheduleError::Unscheduled { .. })
        ));
    }

    #[test]
    fn loop_carried_dependences_relax_with_ii() {
        // b -> a carried distance 1: t(a) >= t(b) + 1 - II.
        let mut g = Ddg::new("rec");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let m = presets::unified_gp(2);
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, 1i64);
        let ok = Schedule::new(2, t.clone());
        assert_eq!(validate_schedule(&g, &m, &map, &ok), Ok(()));
        let bad = Schedule::new(1, t); // t(a)=0 < 1 + 1 - 1 = 1
        assert!(matches!(
            validate_schedule(&g, &m, &map, &bad),
            Err(ScheduleError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn negative_cycles_use_euclidean_rows() {
        let mut t = HashMap::new();
        t.insert(NodeId(0), -3i64);
        let s = Schedule::new(2, t);
        assert_eq!(s.kernel_row(NodeId(0)), Some(1));
        assert_eq!(s.stage(NodeId(0)), Some(-2));
    }

    #[test]
    fn distance_zero_carried_edge_slack_boundary() {
        // An explicitly carried edge at distance 0 is an ordinary
        // intra-iteration constraint: the II term vanishes, so the exact
        // latency boundary must be the accept/reject line at any II.
        let mut g = Ddg::new("d0");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep_carried(a, b, 0);
        let m = presets::unified_gp(4);
        let map = unified_map(&g, &m);
        let lat = i64::from(OpKind::Load.latency());

        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, lat); // exactly on time
        assert_eq!(
            validate_schedule(&g, &m, &map, &Schedule::new(7, t)),
            Ok(())
        );

        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, lat - 1); // one cycle early
        match validate_schedule(&g, &m, &map, &Schedule::new(7, t)) {
            Err(ScheduleError::DependenceViolated {
                src_op,
                src_cycle,
                dst_op,
                dst_cycle,
                slack,
                ..
            }) => {
                assert_eq!(src_op, OpKind::Load);
                assert_eq!(dst_op, OpKind::IntAlu);
                assert_eq!(src_cycle, 0);
                assert_eq!(dst_cycle, lat - 1);
                assert_eq!(slack, -1);
            }
            other => panic!("expected a dependence violation, got {other:?}"),
        }
    }

    #[test]
    fn single_cluster_zero_bus_machine_validates() {
        // A unified machine whose interconnect is a zero-width bus: legal
        // (nothing ever crosses clusters), and validation must not charge
        // bus bandwidth for ordinary operations.
        let m = MachineSpec::new(
            "solo-nobus",
            vec![clasp_machine::ClusterSpec::general(2)],
            clasp_machine::Interconnect::Bus {
                buses: 0,
                read_ports: 1,
                write_ports: 1,
            },
        );
        let (g, a, b) = tiny();
        let map = unified_map(&g, &m);
        let mut t = HashMap::new();
        t.insert(a, 0i64);
        t.insert(b, 2i64);
        assert_eq!(
            validate_schedule(&g, &m, &map, &Schedule::new(1, t)),
            Ok(())
        );
    }
}
