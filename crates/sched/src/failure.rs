//! Typed scheduling-failure reasons.
//!
//! The schedulers used to answer "no schedule at this II" with a bare
//! `None`, which made II-escalation decisions unexplainable: a budget
//! exhaustion (retry at a larger II may help), a structurally impossible
//! resource request (no II will ever help), and a malformed annotation
//! (caller bug) all looked identical. [`SchedFailure`] keeps them apart
//! and records the *blocking node* — the operation the scheduler was
//! working on when it gave up — so the pipeline report can say not just
//! that II escalated but why.

use crate::schedule::ScheduleError;
use clasp_ddg::NodeId;
use std::fmt;

/// Why a modulo-scheduling attempt (or a whole II sweep) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedFailure {
    /// The placement budget (Rau's `budget_ratio × nodes`) ran out at
    /// `ii` while `node` was the highest-priority unscheduled operation.
    /// A larger II usually relieves the contention.
    BudgetExhausted {
        /// The II being attempted.
        ii: u32,
        /// The operation the scheduler was about to (re)place.
        node: NodeId,
    },
    /// No slot in `node`'s scan window was conflict-free at `ii` and
    /// forced placement was not available to the scheduler.
    WindowInfeasible {
        /// The II being attempted.
        ii: u32,
        /// The operation that found no slot.
        node: NodeId,
    },
    /// `node`'s resource request can never be granted: the reservation
    /// table has no matching capacity in any row (e.g. its assigned
    /// cluster has no unit of the required class). No II helps.
    ResourceImpossible {
        /// The II being attempted when the conflict was discovered.
        ii: u32,
        /// The operation with the unsatisfiable request.
        node: NodeId,
    },
    /// An exact (SAT-based) backend spent its solver resource budget
    /// before reaching an answer. Distinct from [`SchedFailure::
    /// BudgetExhausted`]: that is a heuristic placement budget at one II,
    /// this is a proof-search cap — the II in question is neither proved
    /// feasible nor infeasible.
    Budget {
        /// Solver conflicts spent before giving up.
        conflicts: u64,
        /// Node count of the instance (the per-instance size cap also
        /// surfaces here, with `conflicts == 0`).
        nodes: usize,
    },
    /// An exact backend *proved* there is no schedule at `ii` (an UNSAT
    /// certificate, not a search giving up). A larger II may exist.
    Infeasible {
        /// The II proved infeasible.
        ii: u32,
    },
    /// MII is unbounded: some operation kind has no functional unit
    /// anywhere on the machine, so no II search can even start.
    MiiUnbounded,
    /// The graph annotation is unusable — a node is missing its cluster
    /// assignment or copy metadata. This is a caller error, not a
    /// scheduling outcome.
    Invalid(ScheduleError),
    /// Every II in `min_ii..=max_ii` failed. `last` is the final
    /// attempt's reason (`None` only when the range was empty).
    Exhausted {
        /// First II attempted.
        min_ii: u32,
        /// Last II attempted.
        max_ii: u32,
        /// The failure reported at `max_ii`.
        last: Option<Box<SchedFailure>>,
    },
}

impl SchedFailure {
    /// The operation the scheduler was blocked on, when one is known.
    /// For a range exhaustion this is the blocking node of the last
    /// attempt.
    pub fn blocking_node(&self) -> Option<NodeId> {
        match self {
            SchedFailure::BudgetExhausted { node, .. }
            | SchedFailure::WindowInfeasible { node, .. }
            | SchedFailure::ResourceImpossible { node, .. } => Some(*node),
            SchedFailure::Exhausted { last, .. } => last.as_ref().and_then(|f| f.blocking_node()),
            SchedFailure::Budget { .. }
            | SchedFailure::Infeasible { .. }
            | SchedFailure::MiiUnbounded
            | SchedFailure::Invalid(_) => None,
        }
    }

    /// Whether escalating to a larger II could plausibly succeed.
    /// Structural failures (impossible requests, unbounded MII, bad
    /// annotations) return `false`.
    pub fn retryable(&self) -> bool {
        match self {
            SchedFailure::BudgetExhausted { .. }
            | SchedFailure::WindowInfeasible { .. }
            | SchedFailure::Infeasible { .. } => true,
            SchedFailure::Budget { .. }
            | SchedFailure::ResourceImpossible { .. }
            | SchedFailure::MiiUnbounded
            | SchedFailure::Invalid(_) => false,
            SchedFailure::Exhausted { last, .. } => last.as_ref().is_some_and(|f| f.retryable()),
        }
    }
}

impl fmt::Display for SchedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedFailure::BudgetExhausted { ii, node } => {
                write!(
                    f,
                    "placement budget exhausted at II = {ii} (blocked on {node})"
                )
            }
            SchedFailure::WindowInfeasible { ii, node } => {
                write!(f, "no free slot in {node}'s scan window at II = {ii}")
            }
            SchedFailure::ResourceImpossible { ii, node } => {
                write!(
                    f,
                    "{node}'s resource request is unsatisfiable at II = {ii} (no matching unit)"
                )
            }
            SchedFailure::Budget { conflicts, nodes } => {
                if *conflicts == 0 {
                    write!(
                        f,
                        "exact backend refused the instance: {nodes} nodes exceed the size cap"
                    )
                } else {
                    write!(
                        f,
                        "exact solver budget spent ({conflicts} conflicts, {nodes} nodes) \
                         with no answer"
                    )
                }
            }
            SchedFailure::Infeasible { ii } => {
                write!(f, "proved infeasible at II = {ii} (UNSAT)")
            }
            SchedFailure::MiiUnbounded => {
                write!(f, "MII is unbounded: some operation has no unit anywhere")
            }
            SchedFailure::Invalid(e) => write!(f, "graph annotation unusable: {e}"),
            SchedFailure::Exhausted {
                min_ii,
                max_ii,
                last,
            } => {
                write!(f, "every II in {min_ii}..={max_ii} failed")?;
                if let Some(last) = last {
                    write!(f, "; at II = {max_ii}: {last}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SchedFailure {}

impl From<ScheduleError> for SchedFailure {
    fn from(e: ScheduleError) -> Self {
        SchedFailure::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_node_threads_through_exhaustion() {
        let inner = SchedFailure::BudgetExhausted {
            ii: 4,
            node: NodeId(7),
        };
        let outer = SchedFailure::Exhausted {
            min_ii: 2,
            max_ii: 4,
            last: Some(Box::new(inner)),
        };
        assert_eq!(outer.blocking_node(), Some(NodeId(7)));
        assert!(outer.retryable());
    }

    #[test]
    fn structural_failures_are_not_retryable() {
        assert!(!SchedFailure::MiiUnbounded.retryable());
        assert!(!SchedFailure::ResourceImpossible {
            ii: 1,
            node: NodeId(0)
        }
        .retryable());
        assert_eq!(SchedFailure::MiiUnbounded.blocking_node(), None);
    }

    #[test]
    fn solver_budget_and_infeasible_shapes() {
        let b = SchedFailure::Budget {
            conflicts: 1000,
            nodes: 12,
        };
        assert_eq!(b.blocking_node(), None);
        assert!(!b.retryable(), "a spent proof budget is not an II problem");
        assert!(b.to_string().contains("1000 conflicts"));
        let cap = SchedFailure::Budget {
            conflicts: 0,
            nodes: 99,
        };
        assert!(cap.to_string().contains("size cap"));
        let inf = SchedFailure::Infeasible { ii: 3 };
        assert!(inf.retryable(), "UNSAT at one II says nothing about II+1");
        assert!(inf.to_string().contains("II = 3"));
    }

    #[test]
    fn display_is_informative() {
        let s = SchedFailure::BudgetExhausted {
            ii: 3,
            node: NodeId(2),
        }
        .to_string();
        assert!(s.contains("II = 3"));
        assert!(s.contains("budget"));
    }
}
