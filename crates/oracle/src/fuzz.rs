//! The fuzz loop: generate cases, check them, optionally shrink and
//! write reproducers for the failures.

use std::path::{Path, PathBuf};

use crate::casegen::{generate_case, FuzzCase};
use crate::fault::Fault;
use crate::oracle::{check_case, OracleOptions, OracleViolation, PipelineFn};
use crate::repro::write_repro;
use crate::shrink::shrink_case;

/// Fuzz-run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Root seed of the case stream.
    pub seed: u64,
    /// Number of (loop, machine) cases to check.
    pub cases: usize,
    /// Trip count for functional simulation.
    pub iterations: i64,
    /// Deliberate corruption (oracle self-test); [`Fault::None`] in
    /// production runs.
    pub fault: Fault,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 500,
            iterations: 8,
            fault: Fault::None,
        }
    }
}

/// One violating case, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The generated case.
    pub case: FuzzCase,
    /// The violations it exhibits.
    pub violations: Vec<OracleViolation>,
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases checked.
    pub checked: usize,
    /// The failing cases, in stream order.
    pub failures: Vec<Failure>,
    /// Reproducer files written by [`run_fuzz_with_repros`] (empty when
    /// shrinking is off or nothing failed).
    pub repro_files: Vec<PathBuf>,
}

impl FuzzReport {
    /// Whether every case passed every invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check `config.cases` generated cases against the oracle.
pub fn run_fuzz(config: &FuzzConfig, pipeline: PipelineFn) -> FuzzReport {
    let opts = OracleOptions {
        iterations: config.iterations,
        fault: config.fault,
    };
    let mut report = FuzzReport::default();
    for index in 0..config.cases {
        let case = generate_case(config.seed, index);
        let violations = check_case(&case.graph, &case.machine, pipeline, &opts);
        report.checked += 1;
        if !violations.is_empty() {
            report.failures.push(Failure { case, violations });
        }
    }
    report
}

/// As [`run_fuzz`], then shrink each failure and write its reproducer
/// pair under `repro_dir` (stems `case-<index>`). Shrinking failures are
/// not fatal: a failure whose shrink hits the trial budget is written
/// unreduced.
///
/// # Errors
///
/// Any filesystem error while writing reproducers.
pub fn run_fuzz_with_repros(
    config: &FuzzConfig,
    pipeline: PipelineFn,
    repro_dir: &Path,
) -> std::io::Result<FuzzReport> {
    let opts = OracleOptions {
        iterations: config.iterations,
        fault: config.fault,
    };
    let mut report = run_fuzz(config, pipeline);
    for failure in &report.failures {
        let stem = format!("case-{:04}", failure.case.index);
        let (graph, machine, violations) =
            match shrink_case(&failure.case.graph, &failure.case.machine, pipeline, &opts) {
                Some(outcome) => (outcome.graph, outcome.machine, outcome.violations),
                None => (
                    failure.case.graph.clone(),
                    failure.case.machine.clone(),
                    failure.violations.clone(),
                ),
            };
        let (lp, mp) = write_repro(
            repro_dir,
            &stem,
            &graph,
            &machine,
            &violations,
            failure.case.case_seed,
        )?;
        report.repro_files.push(lp);
        report.repro_files.push(mp);
    }
    Ok(report)
}
