//! The fuzz loop: generate cases, check them in parallel on the
//! deterministic executor, optionally shrink and write reproducers for
//! the failures.
//!
//! Cases are checked on [`clasp_exec::try_sweep`]: dynamically balanced
//! workers, results collected in stream order, so the report — failures,
//! their violations, and their ordering — is bit-identical for every
//! thread count. A panic while checking one case no longer tears the
//! whole sweep down: it is captured per case and reported as an
//! [`OracleViolation::CheckPanicked`] failure at that case's stream
//! position.

use std::path::{Path, PathBuf};

use crate::casegen::{generate_case, FuzzCase};
use crate::fault::Fault;
use crate::oracle::{
    check_case, exact_minimal_ii, OracleOptions, OracleViolation, PipelineFn, EXACT_ORACLE_NODE_CAP,
};
use crate::repro::{write_hard_case, write_repro};
use crate::shrink::{shrink_case, shrink_while};

/// Fuzz-run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Root seed of the case stream.
    pub seed: u64,
    /// Number of (loop, machine) cases to check.
    pub cases: usize,
    /// Trip count for functional simulation.
    pub iterations: i64,
    /// Deliberate corruption (oracle self-test); [`Fault::None`] in
    /// production runs.
    pub fault: Fault,
    /// Worker threads for case checking (0 = one per hardware thread).
    /// The report is bit-identical for every value.
    pub threads: usize,
    /// Cross-check small loops against the exact SAT backend (invariant
    /// 9, `heuristic II >= exact II`) and collect *hard instances* —
    /// cases where the heuristic's II strictly exceeds the proven
    /// minimum — into [`FuzzReport::hard`].
    pub exact: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 500,
            iterations: 8,
            fault: Fault::None,
            threads: 0,
            exact: false,
        }
    }
}

/// One violating case, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The generated case.
    pub case: FuzzCase,
    /// The violations it exhibits.
    pub violations: Vec<OracleViolation>,
}

/// A mined hard instance: the heuristic settled on a strictly larger II
/// than the exact backend proved minimal. Not a violation — a heuristic
/// is allowed to be suboptimal — but exactly the corpus that stresses
/// it.
#[derive(Debug, Clone)]
pub struct HardCase {
    /// The generated case.
    pub case: FuzzCase,
    /// The heuristic's achieved II.
    pub heuristic: u32,
    /// The exact backend's proven minimal II.
    pub exact: u32,
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases checked.
    pub checked: usize,
    /// The failing cases, in stream order.
    pub failures: Vec<Failure>,
    /// Reproducer files written by [`run_fuzz_with_repros`] (empty when
    /// shrinking is off or nothing failed).
    pub repro_files: Vec<PathBuf>,
    /// Hard instances found by the exact cross-check
    /// ([`FuzzConfig::exact`]), in stream order.
    pub hard: Vec<HardCase>,
}

impl FuzzReport {
    /// Whether every case passed every invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check `config.cases` generated cases against the oracle, in parallel
/// on `config.threads` workers. Failures land in stream order and the
/// whole report is bit-identical for every thread count.
///
/// A panic inside one case's check is captured (the rest of the sweep
/// still runs) and surfaces as a [`Failure`] whose single violation is
/// [`OracleViolation::CheckPanicked`] carrying the panic payload.
pub fn run_fuzz(config: &FuzzConfig, pipeline: PipelineFn) -> FuzzReport {
    let opts = OracleOptions {
        iterations: config.iterations,
        fault: config.fault,
        exact: config.exact,
    };
    let indices: Vec<usize> = (0..config.cases).collect();
    let results = clasp_exec::try_sweep(
        config.threads,
        &indices,
        || (),
        |(), _, &index| {
            let case = generate_case(config.seed, index);
            let violations = check_case(&case.graph, &case.machine, pipeline, &opts);
            let gap = if config.exact
                && violations.is_empty()
                && case.graph.node_count() <= EXACT_ORACLE_NODE_CAP
            {
                positive_gap(&case.graph, &case.machine, pipeline)
            } else {
                None
            };
            (case, violations, gap)
        },
    );
    let mut report = FuzzReport::default();
    for (index, result) in results.into_iter().enumerate() {
        report.checked += 1;
        match result {
            Ok((case, violations, gap)) => {
                if let Some((heuristic, exact)) = gap {
                    report.hard.push(HardCase {
                        case: case.clone(),
                        heuristic,
                        exact,
                    });
                }
                if !violations.is_empty() {
                    report.failures.push(Failure { case, violations });
                }
            }
            Err(payload) => {
                // Regenerate the case so the failure is replayable. (If
                // generation itself panicked we panic here too — exactly
                // what the serial loop did.)
                let case = generate_case(config.seed, index);
                report.failures.push(Failure {
                    case,
                    violations: vec![OracleViolation::CheckPanicked { payload }],
                });
            }
        }
    }
    report
}

/// `(heuristic II, exact II)` when the pipeline schedules the pair at a
/// strictly larger II than the exact backend proves minimal; `None` when
/// either side fails, the solve is refused, or there is no gap.
fn positive_gap(
    g: &clasp_ddg::Ddg,
    machine: &clasp_machine::MachineSpec,
    pipeline: PipelineFn,
) -> Option<(u32, u32)> {
    let heuristic = pipeline(g, machine).ok()?.schedule.ii();
    let exact = exact_minimal_ii(g, machine)?;
    (heuristic > exact).then_some((heuristic, exact))
}

/// Predicate-call budget per hard-case shrink: each trial costs a full
/// compile *and* a SAT solve, so the budget is much tighter than the
/// violation shrinker's.
const HARD_SHRINK_TRIALS: usize = 500;

/// Shrink each of `report.hard`'s instances while its heuristic-vs-exact
/// gap stays positive, and write the reduced pairs into `dir` (stems
/// `hard-<index>`, gap recorded in the `.clasp` header). Prior
/// `hard-*` files in `dir` are removed first. Returns the written paths.
///
/// # Errors
///
/// Any filesystem error preparing the directory or writing the files.
pub fn mine_hard_cases(
    report: &FuzzReport,
    pipeline: PipelineFn,
    dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("hard-") && (name.ends_with(".clasp") || name.ends_with(".machine")) {
            std::fs::remove_file(entry.path())?;
        }
    }
    let mut written = Vec::new();
    for hard in &report.hard {
        let (g, m, _) = shrink_while(
            &hard.case.graph,
            &hard.case.machine,
            HARD_SHRINK_TRIALS,
            |g, m| positive_gap(g, m, pipeline).is_some(),
        );
        // Re-measure on the reduced pair: shrinking preserves *positivity*
        // of the gap, not its magnitude.
        let (heuristic, exact) =
            positive_gap(&g, &m, pipeline).expect("shrink_while preserves the predicate");
        let stem = format!("hard-{:04}", hard.case.index);
        let (lp, mp) = write_hard_case(dir, &stem, &g, &m, heuristic, exact, hard.case.case_seed)?;
        written.push(lp);
        written.push(mp);
    }
    Ok(written)
}

/// Remove reproducers left by prior runs (`case-*.clasp` /
/// `case-*.machine`), leaving unrelated files alone.
fn clean_stale_repros(repro_dir: &Path) -> std::io::Result<()> {
    for entry in std::fs::read_dir(repro_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("case-") && (name.ends_with(".clasp") || name.ends_with(".machine")) {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// As [`run_fuzz`], then shrink each failure and write its reproducer
/// pair under `repro_dir` (stems `case-<index>`). Shrinking failures are
/// not fatal: a failure whose shrink hits the trial budget is written
/// unreduced.
///
/// The directory is created up front and reproducers from prior runs are
/// removed first, even when this run is clean — a green run after a red
/// one must not leave the red run's case files behind to be mistaken for
/// fresh failures.
///
/// # Errors
///
/// Any filesystem error while preparing the directory or writing
/// reproducers.
pub fn run_fuzz_with_repros(
    config: &FuzzConfig,
    pipeline: PipelineFn,
    repro_dir: &Path,
) -> std::io::Result<FuzzReport> {
    std::fs::create_dir_all(repro_dir)?;
    clean_stale_repros(repro_dir)?;
    let opts = OracleOptions {
        iterations: config.iterations,
        fault: config.fault,
        exact: config.exact,
    };
    let mut report = run_fuzz(config, pipeline);
    for failure in &report.failures {
        let stem = format!("case-{:04}", failure.case.index);
        let (graph, machine, violations) =
            match shrink_case(&failure.case.graph, &failure.case.machine, pipeline, &opts) {
                Some(outcome) => (outcome.graph, outcome.machine, outcome.violations),
                None => (
                    failure.case.graph.clone(),
                    failure.case.machine.clone(),
                    failure.violations.clone(),
                ),
            };
        let (lp, mp) = write_repro(
            repro_dir,
            &stem,
            &graph,
            &machine,
            &violations,
            failure.case.case_seed,
        )?;
        report.repro_files.push(lp);
        report.repro_files.push(mp);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CompiledCase;
    use clasp_ddg::Ddg;
    use clasp_machine::MachineSpec;

    fn panicking(_: &Ddg, _: &MachineSpec) -> Result<CompiledCase, String> {
        panic!("kaboom");
    }

    fn rejecting(_: &Ddg, _: &MachineSpec) -> Result<CompiledCase, String> {
        Err("rejected".into())
    }

    #[test]
    fn check_panics_are_captured_per_case_in_stream_order() {
        let config = FuzzConfig {
            cases: 5,
            threads: 3,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&config, &panicking);
        assert_eq!(report.checked, 5);
        assert_eq!(report.failures.len(), 5, "every case panics");
        for (i, failure) in report.failures.iter().enumerate() {
            assert_eq!(failure.case.index, i, "failures must be in stream order");
            match &failure.violations[..] {
                [OracleViolation::CheckPanicked { payload }] => {
                    assert!(payload.contains("kaboom"), "payload: {payload}");
                }
                other => panic!("expected CheckPanicked, got {other:?}"),
            }
        }
        // Bit-identical at any thread count.
        let serial = run_fuzz(
            &FuzzConfig {
                threads: 1,
                ..config
            },
            &panicking,
        );
        assert_eq!(serial.failures.len(), report.failures.len());
    }

    #[test]
    fn repro_dir_is_created_and_stale_cases_cleaned() {
        let dir = std::env::temp_dir().join("clasp-oracle-stale-repro-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Red run: every case fails the pipeline, so reproducers land.
        let config = FuzzConfig {
            cases: 2,
            threads: 1,
            ..FuzzConfig::default()
        };
        let report = run_fuzz_with_repros(&config, &rejecting, &dir).unwrap();
        assert!(!report.is_clean());
        assert!(!report.repro_files.is_empty());
        std::fs::write(dir.join("NOTES.md"), "keep me").unwrap();

        // Green run: the directory must still be materialized, the prior
        // run's case files gone, and unrelated files untouched.
        let clean = FuzzConfig { cases: 0, ..config };
        let report = run_fuzz_with_repros(&clean, &rejecting, &dir).unwrap();
        assert!(report.is_clean());
        assert!(dir.is_dir(), "repro dir must exist even on a clean run");
        assert!(dir.join("NOTES.md").exists(), "unrelated files survive");
        let stale: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("case-"))
            .collect();
        assert!(stale.is_empty(), "stale reproducers left behind: {stale:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_writes_repros_into_a_missing_dir() {
        let dir = std::env::temp_dir().join("clasp-oracle-fresh-repro-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = FuzzConfig {
            cases: 1,
            threads: 1,
            ..FuzzConfig::default()
        };
        let report = run_fuzz_with_repros(&config, &rejecting, &dir).unwrap();
        assert_eq!(report.repro_files.len(), 2);
        for p in &report.repro_files {
            assert!(p.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
