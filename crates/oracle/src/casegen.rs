//! Fuzz-case generation: a seeded stream of (loop, machine) pairs.
//!
//! Loops come from `loopgen`'s Table-1-calibrated synthetic generator,
//! optionally with *latency perturbations*: random edges get latencies
//! stretched beyond the producer's Table-2 value, modelling slow operand
//! paths and conservative dependence distances. (Perturbations never
//! *shorten* a data edge: the functional simulator models hardware write
//! latencies, so a sub-latency edge would let a valid-looking schedule
//! read a register before the machine writes it — generator noise, not a
//! pipeline bug.) Machines come
//! from [`crate::machgen::random_machine`]. Each case is derived from its
//! own sub-seed so any case replays in isolation.

use clasp_ddg::{Ddg, DepEdge};
use clasp_loopgen::generate_loop;
use clasp_loopgen::rng::Rng;
use clasp_machine::MachineSpec;

use crate::machgen::random_machine;

/// One (loop, machine) fuzz input.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Stream position the case was generated at.
    pub index: usize,
    /// The per-case sub-seed (replays the case without the whole stream).
    pub case_seed: u64,
    /// The loop body.
    pub graph: Ddg,
    /// The target machine.
    pub machine: MachineSpec,
}

/// The sub-seed of case `index` under stream seed `seed` (golden-ratio
/// sequence, the standard SplitMix64 stream split).
pub fn case_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Rebuild `g` with randomly perturbed edge latencies: each edge keeps
/// its endpoints and distance, but with probability ~1/4 its latency is
/// stretched by 1-3 cycles beyond its current value.
fn perturb_latencies(rng: &mut Rng, g: &Ddg) -> Ddg {
    let mut out = Ddg::new(g.name());
    for (_, op) in g.nodes() {
        out.add_op(op.clone());
    }
    for (_, e) in g.edges() {
        let latency = if rng.chance(0.25) {
            e.latency + rng.range_inclusive(1, 3) as u32
        } else {
            e.latency
        };
        out.add_edge(DepEdge { latency, ..*e });
    }
    out
}

/// Generate case `index` of the stream with root seed `seed`.
pub fn generate_case(seed: u64, index: usize) -> FuzzCase {
    let sub = case_seed(seed, index);
    let mut rng = Rng::seed_from_u64(sub);
    // ~1 in 4 loops carries a recurrence, matching the corpus ratio
    // (301 / 1327) closely enough for fuzzing purposes.
    let with_scc = rng.chance(0.25);
    let mut graph = generate_loop(&mut rng, index, with_scc);
    if rng.chance(0.5) {
        graph = perturb_latencies(&mut rng, &graph);
    }
    let machine = random_machine(&mut rng, index);
    debug_assert!(graph.validate().is_ok());
    FuzzCase {
        index,
        case_seed: sub,
        graph,
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_replay_from_their_sub_seed() {
        let a = generate_case(42, 17);
        let b = generate_case(42, 17);
        assert_eq!(a.case_seed, b.case_seed);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.machine, b.machine);
        let ea: Vec<_> = a.graph.edges().map(|(_, e)| *e).collect();
        let eb: Vec<_> = b.graph.edges().map(|(_, e)| *e).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn perturbed_latencies_keep_graphs_valid() {
        for i in 0..200 {
            let case = generate_case(7, i);
            assert!(case.graph.validate().is_ok(), "case {i} invalid");
        }
    }

    #[test]
    fn stream_actually_perturbs_some_latency() {
        let mut changed = false;
        for i in 0..100 {
            let case = generate_case(3, i);
            for (_, e) in case.graph.edges() {
                if e.latency != case.graph.op(e.src).kind.latency() {
                    changed = true;
                }
            }
        }
        assert!(changed, "no perturbed latency in 100 cases");
    }
}
