//! Seeded random clustered-machine generator.
//!
//! `loopgen` synthesizes the paper's *loop* population; this module
//! synthesizes its *machine* population: cluster counts and per-cluster
//! function-unit mixes spanning the paper's GP and FS styles (§2.1,
//! Figure 1), bused and point-to-point fabrics with varying bandwidth and
//! port counts (Figures 2-4).
//!
//! Every generated machine is *feasible by construction* so that a
//! pipeline failure on one is a real finding, never generator noise:
//!
//! - every cluster has at least one function unit, and every FU class is
//!   executable somewhere on the machine (so no loop is structurally
//!   uncompilable);
//! - multi-cluster machines always have a connected fabric with nonzero
//!   bandwidth (at least one bus, or a link spanning tree) and at least
//!   one read and write port per cluster.

use clasp_loopgen::rng::Rng;
use clasp_machine::{ClusterId, ClusterSpec, Interconnect, Link, MachineSpec};

/// One random cluster: GP, FS, or a mixed pool, never empty.
fn random_cluster(rng: &mut Rng) -> ClusterSpec {
    match rng.below(3) {
        // General purpose, the paper's GP style (Fig. 1 left).
        0 => ClusterSpec::general(rng.range_inclusive(1, 4) as u32),
        // Fully specified, the paper's FS style (Fig. 1 right). At least
        // one unit overall; per-class counts may be zero.
        1 => loop {
            let spec = ClusterSpec::specialized(
                rng.below(3) as u32,
                rng.below(3) as u32,
                rng.below(3) as u32,
            );
            if spec.issue_width() > 0 {
                return spec;
            }
        },
        // Mixed: a small GP pool absorbing overflow from dedicated units.
        _ => ClusterSpec {
            general: rng.range_inclusive(1, 2) as u32,
            memory: rng.below(2) as u32,
            integer: rng.below(2) as u32,
            float: rng.below(2) as u32,
        },
    }
}

/// A random connected point-to-point link table over `n` clusters: a
/// random spanning tree plus a few extra chords.
fn random_links(rng: &mut Rng, n: usize) -> Vec<Link> {
    let mut links: Vec<Link> = Vec::new();
    // Spanning tree: attach each cluster to a random earlier one.
    for b in 1..n {
        let a = rng.below(b);
        links.push(Link {
            a: ClusterId(a as u32),
            b: ClusterId(b as u32),
        });
    }
    // Extra chords, skipping duplicates.
    let extras = rng.below(n);
    for _ in 0..extras {
        let a = rng.below(n);
        let b = rng.below(n);
        if a == b {
            continue;
        }
        let (a, b) = (ClusterId(a as u32), ClusterId(b as u32));
        let dup = links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a));
        if !dup {
            links.push(Link { a, b });
        }
    }
    links
}

/// Generate a random feasible machine. `index` only names the machine;
/// all structure comes from `rng`, so a caller-held stream stays
/// reproducible across machines.
pub fn random_machine(rng: &mut Rng, index: usize) -> MachineSpec {
    let n = rng.range_inclusive(1, 6);
    let mut clusters: Vec<ClusterSpec> = (0..n).map(|_| random_cluster(rng)).collect();
    // Feasibility: every FU class must execute somewhere. A single GP
    // unit anywhere covers all classes; otherwise patch missing classes
    // into a random cluster.
    let any_gp = clusters.iter().any(|c| c.general > 0);
    if !any_gp {
        let missing_mem = clusters.iter().all(|c| c.memory == 0);
        let missing_int = clusters.iter().all(|c| c.integer == 0);
        let missing_fp = clusters.iter().all(|c| c.float == 0);
        let fix = rng.below(n);
        if missing_mem {
            clusters[fix].memory += 1;
        }
        if missing_int {
            clusters[fix].integer += 1;
        }
        if missing_fp {
            clusters[fix].float += 1;
        }
    }
    let interconnect = if n == 1 {
        // Unified machines occasionally carry a (useless) fabric so the
        // oracle also covers the bus-width-0 and single-cluster corners.
        match rng.below(3) {
            0 => Interconnect::Bus {
                buses: rng.below(3) as u32, // 0 is deliberate
                read_ports: 1,
                write_ports: 1,
            },
            _ => Interconnect::None,
        }
    } else if rng.chance(0.7) {
        Interconnect::Bus {
            buses: rng.range_inclusive(1, n) as u32,
            read_ports: rng.range_inclusive(1, 2) as u32,
            write_ports: rng.range_inclusive(1, 2) as u32,
        }
    } else {
        Interconnect::PointToPoint {
            links: random_links(rng, n),
            read_ports: rng.range_inclusive(1, 2) as u32,
            write_ports: rng.range_inclusive(1, 2) as u32,
        }
    };
    MachineSpec::new(format!("fuzz-{index:04}"), clusters, interconnect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::{Ddg, OpKind};

    fn all_kinds_loop() -> Ddg {
        let mut g = Ddg::new("all");
        for k in OpKind::REAL_OPS {
            g.add(k);
        }
        g
    }

    #[test]
    fn machines_are_always_feasible() {
        let g = all_kinds_loop();
        let mut rng = Rng::seed_from_u64(11);
        for i in 0..500 {
            let m = random_machine(&mut rng, i);
            assert!(m.can_execute_all(&g), "machine {i} cannot run all kinds");
            assert!(m.res_mii(&g) < u32::MAX);
            for c in m.cluster_ids() {
                assert!(m.cluster(c).issue_width() > 0, "empty cluster in {i}");
            }
        }
    }

    #[test]
    fn multi_cluster_machines_are_connected() {
        let mut rng = Rng::seed_from_u64(12);
        for i in 0..500 {
            let m = random_machine(&mut rng, i);
            if m.cluster_count() < 2 {
                continue;
            }
            for a in m.cluster_ids() {
                for b in m.cluster_ids() {
                    assert!(
                        m.interconnect().route(a, b, m.cluster_count()).is_ok(),
                        "machine {i}: {a} cannot reach {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let ms_a: Vec<_> = {
            let mut rng = Rng::seed_from_u64(7);
            (0..50).map(|i| random_machine(&mut rng, i)).collect()
        };
        let ms_b: Vec<_> = {
            let mut rng = Rng::seed_from_u64(7);
            (0..50).map(|i| random_machine(&mut rng, i)).collect()
        };
        assert_eq!(ms_a, ms_b);
    }

    #[test]
    fn population_spans_styles() {
        let mut rng = Rng::seed_from_u64(13);
        let ms: Vec<_> = (0..300).map(|i| random_machine(&mut rng, i)).collect();
        assert!(ms.iter().any(|m| m.is_unified()));
        assert!(ms.iter().any(|m| m.cluster_count() >= 4));
        assert!(ms.iter().any(|m| m.interconnect().is_broadcast()));
        assert!(ms.iter().any(|m| !m.interconnect().links().is_empty()));
        assert!(ms
            .iter()
            .any(|m| m.total_general() == 0 && m.cluster_count() > 1));
    }
}
