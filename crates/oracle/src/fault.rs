//! Deliberate corruption of a compiled case, for testing the oracle
//! itself (and CI's "does the fuzzer actually detect bugs" smoke check).
//!
//! A fault is applied to the *compiled artifact*, after the pipeline and
//! before the invariant checks, so the pipeline stays untouched and every
//! fault deterministically trips at least one invariant on any case it
//! applies to. (Disabling a legal ablation knob — say PCR prediction —
//! would not do: ablations still produce valid schedules.)

use clasp_ddg::NodeId;
use clasp_machine::{ClusterId, MachineSpec};
use clasp_sched::Schedule;
use std::collections::HashMap;
use std::fmt;

use crate::oracle::CompiledCase;

/// A deliberate post-compile corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Fault {
    /// No corruption (the production configuration).
    #[default]
    None,
    /// Issue the first dependence's consumer one cycle too early — the
    /// classic off-by-one a latency-table bug would produce. Trips
    /// `validate_schedule` (negative slack) on any case with an edge.
    SkewSchedule,
    /// Move node 0 to the next cluster without inserting a copy — the
    /// signature bug of a cluster-assignment rewrite. Trips
    /// `validate_assignment` (illegal crossing / wrong class / capacity)
    /// on any multi-cluster case.
    MisplaceNode,
    /// Smear a carried crossing edge's distance one segment up its copy
    /// chain (delivery -> consumer becomes distance 0, the feed into the
    /// delivery copy picks it up). Total cycle distance is preserved, so
    /// RecMII does not move — only the oracle's carried-distance-split
    /// invariant catches it. Applies to any case whose working graph has
    /// a carried copy-chain delivery.
    SmearDistance,
}

impl Fault {
    /// Parse a CLI spelling (`none`, `skew`, `misplace`, `smear`).
    pub fn parse(s: &str) -> Option<Fault> {
        match s {
            "none" => Some(Fault::None),
            "skew" => Some(Fault::SkewSchedule),
            "misplace" => Some(Fault::MisplaceNode),
            "smear" => Some(Fault::SmearDistance),
            _ => None,
        }
    }

    /// Apply the corruption in place. A fault that does not apply to this
    /// case (no edges / single cluster) leaves it untouched.
    pub fn apply(self, case: &mut CompiledCase, machine: &MachineSpec) {
        match self {
            Fault::None => {}
            Fault::SkewSchedule => {
                let wg = &case.assignment.graph;
                // A self-edge cannot be skewed (moving the consumer moves
                // the producer too), so take the first proper edge.
                let Some((_, edge)) = wg.edges().find(|(_, e)| e.src != e.dst) else {
                    return;
                };
                let (src, dst, latency, distance) =
                    (edge.src, edge.dst, edge.latency, edge.distance);
                let sched = &case.schedule;
                let ii = i64::from(sched.ii());
                let Some(ts) = sched.start(src) else { return };
                // One cycle earlier than the dependence allows: slack -1.
                let too_early = ts + i64::from(latency) - i64::from(distance) * ii - 1;
                let mut time: HashMap<NodeId, i64> = sched.iter().collect();
                time.insert(dst, too_early);
                case.schedule = Schedule::new(sched.ii(), time);
            }
            Fault::MisplaceNode => {
                if machine.cluster_count() < 2 {
                    return;
                }
                let n = NodeId(0);
                let Some(c) = case.assignment.map.cluster_of(n) else {
                    return;
                };
                let next = ClusterId((c.0 + 1) % machine.cluster_count() as u32);
                case.assignment.map.assign(n, next);
            }
            Fault::SmearDistance => {
                let wg = &case.assignment.graph;
                let Some((delivery_id, distance, copy)) = wg
                    .edges()
                    .find(|(_, e)| e.distance > 0 && wg.op(e.src).kind.is_copy())
                    .map(|(id, e)| (id, e.distance, e.src))
                else {
                    return;
                };
                let Some(feed_id) = wg.pred_edges(copy).next().map(|(id, _)| id) else {
                    return;
                };
                let mut out = clasp_ddg::Ddg::new(wg.name());
                for (_, op) in wg.nodes() {
                    out.add_op(op.clone());
                }
                for (eid, e) in wg.edges() {
                    let mut e = *e;
                    if eid == delivery_id {
                        e.distance = 0;
                    } else if eid == feed_id {
                        e.distance += distance;
                    }
                    out.add_edge(e);
                }
                case.assignment.graph = out;
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::None => write!(f, "none"),
            Fault::SkewSchedule => write!(f, "skew"),
            Fault::MisplaceNode => write!(f, "misplace"),
            Fault::SmearDistance => write!(f, "smear"),
        }
    }
}
