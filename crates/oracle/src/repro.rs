//! Reproducer files for violating cases.
//!
//! A reproducer is a pair of files under `results/repros/`:
//!
//! - `<stem>.clasp` — the (reduced) loop in the `.clasp` format, with the
//!   violations recorded as `#` comments in the header;
//! - `<stem>.machine` — the (reduced) machine in the `.machine` format.
//!
//! Replay with the CLI:
//!
//! ```text
//! clasp-cli compile results/repros/<stem>.clasp \
//!     --machine-file results/repros/<stem>.machine --explain
//! ```

use clasp_ddg::Ddg;
use clasp_machine::MachineSpec;
use clasp_text::{write_loop, write_machine};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::oracle::OracleViolation;

/// Render the `.clasp` reproducer text: violation header + loop body.
pub fn repro_loop_text(graph: &Ddg, violations: &[OracleViolation], case_seed: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# fuzz reproducer (case seed {case_seed:#x})");
    for v in violations {
        let _ = writeln!(s, "# violation [{}]: {v}", v.kind());
    }
    s.push_str(&write_loop(graph));
    s
}

/// Write the reproducer pair `<stem>.clasp` / `<stem>.machine` into
/// `dir`, creating it as needed. Returns both paths.
///
/// # Errors
///
/// Any filesystem error creating the directory or writing the files.
pub fn write_repro(
    dir: &Path,
    stem: &str,
    graph: &Ddg,
    machine: &MachineSpec,
    violations: &[OracleViolation],
    case_seed: u64,
) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let loop_path = dir.join(format!("{stem}.clasp"));
    let machine_path = dir.join(format!("{stem}.machine"));
    fs::write(&loop_path, repro_loop_text(graph, violations, case_seed))?;
    fs::write(&machine_path, write_machine(machine))?;
    Ok((loop_path, machine_path))
}

/// Render the `.clasp` text of a mined *hard instance*: a case where the
/// heuristic's achieved II strictly exceeds the exact backend's proven
/// minimum. The gap header is machine-readable (see [`parse_gap_header`])
/// so the regression suite can assert the gap never grows.
pub fn hard_loop_text(graph: &Ddg, heuristic: u32, exact: u32, case_seed: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# hard instance (case seed {case_seed:#x})");
    let _ = writeln!(s, "# gap: heuristic II {heuristic}, exact II {exact}");
    s.push_str(&write_loop(graph));
    s
}

/// Recover `(heuristic, exact)` from a [`hard_loop_text`] gap header.
pub fn parse_gap_header(text: &str) -> Option<(u32, u32)> {
    let line = text.lines().find(|l| l.starts_with("# gap:"))?;
    let mut nums = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .map(str::parse);
    let heuristic = nums.next()?.ok()?;
    let exact = nums.next()?.ok()?;
    Some((heuristic, exact))
}

/// Write the hard-instance pair `<stem>.clasp` / `<stem>.machine` into
/// `dir`, creating it as needed. Returns both paths.
///
/// # Errors
///
/// Any filesystem error creating the directory or writing the files.
pub fn write_hard_case(
    dir: &Path,
    stem: &str,
    graph: &Ddg,
    machine: &MachineSpec,
    heuristic: u32,
    exact: u32,
    case_seed: u64,
) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let loop_path = dir.join(format!("{stem}.clasp"));
    let machine_path = dir.join(format!("{stem}.machine"));
    fs::write(
        &loop_path,
        hard_loop_text(graph, heuristic, exact, case_seed),
    )?;
    fs::write(&machine_path, write_machine(machine))?;
    Ok((loop_path, machine_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;
    use clasp_text::{parse_loop, parse_machine};

    #[test]
    fn hard_case_text_round_trips_gap_and_loop() {
        let mut g = Ddg::new("h");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        let text = hard_loop_text(&g, 5, 3, 0x42);
        assert_eq!(parse_gap_header(&text), Some((5, 3)));
        let back = parse_loop(&text).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(parse_gap_header("loop x\n"), None);
    }

    #[test]
    fn repro_text_parses_back() {
        let mut g = Ddg::new("r");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::Store);
        g.add_dep(a, b);
        let violations = vec![OracleViolation::IiBelowMii { ii: 1, mii: 3 }];
        let text = repro_loop_text(&g, &violations, 0xabcd);
        assert!(text.contains("ii-below-mii"));
        let back = parse_loop(&text).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
    }

    #[test]
    fn write_repro_round_trips_machine() {
        let dir = std::env::temp_dir().join("clasp-oracle-repro-test");
        let mut g = Ddg::new("r");
        g.add(OpKind::Load);
        let m = presets::two_cluster_gp(2, 1);
        let (lp, mp) = write_repro(&dir, "case", &g, &m, &[], 7).unwrap();
        let loop_back = parse_loop(&fs::read_to_string(&lp).unwrap()).unwrap();
        assert_eq!(loop_back.node_count(), 1);
        let machine_back = parse_machine(&fs::read_to_string(&mp).unwrap()).unwrap();
        assert_eq!(machine_back, m);
        let _ = fs::remove_dir_all(&dir);
    }
}
