//! # clasp-oracle — differential fuzzing oracle for the CLASP pipeline
//!
//! The paper's central claims are *structural invariants* of the
//! compiled artifact: copies never land on critical recurrence SCCs
//! (§4.1), the annotated DDG schedules on a clustering-unaware modulo
//! scheduler (§3), and achieved II degrades gracefully against the
//! unified machine (Figs. 12-19). This crate checks all of them — plus
//! functional equivalence of the emitted kernels under both register
//! models — over a seeded stream of random (loop, machine) pairs, and
//! shrinks any violating pair to a minimal reproducer.
//!
//! Components:
//!
//! - [`machgen`]: random feasible clustered machines (cluster counts, GP /
//!   FS / mixed unit mixes, bus and point-to-point fabrics);
//! - [`casegen`]: the case stream, pairing `loopgen`'s Table-1-calibrated
//!   loops (with latency perturbations) with random machines;
//! - [`oracle`]: the per-case invariant pass, reporting typed
//!   [`OracleViolation`]s;
//! - [`fault`]: deliberate artifact corruption, proving the oracle and
//!   the CI smoke job can actually detect bugs;
//! - [`shrink`]: a delta-debugging minimizer preserving the violation
//!   class;
//! - [`fuzz`]: the driver loop writing `.clasp` + `.machine` reproducers.
//!
//! The compilation pipeline itself is *injected* as a [`PipelineFn`]
//! closure: the root `clasp` crate (which depends on this one for its
//! CLI) binds it to `compile_full`, and this crate's integration tests
//! use the same binding through a dev-dependency.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod casegen;
pub mod fault;
pub mod fuzz;
pub mod machgen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use casegen::{case_seed, generate_case, FuzzCase};
pub use fault::Fault;
pub use fuzz::{
    mine_hard_cases, run_fuzz, run_fuzz_with_repros, Failure, FuzzConfig, FuzzReport, HardCase,
};
pub use machgen::random_machine;
pub use oracle::{
    check_case, exact_minimal_ii, unified_baseline_ii, CompiledCase, OracleOptions,
    OracleViolation, PipelineFn, EXACT_ORACLE_NODE_CAP,
};
pub use repro::{hard_loop_text, parse_gap_header, repro_loop_text, write_hard_case, write_repro};
pub use shrink::{shrink_case, shrink_while, ShrinkOutcome};
