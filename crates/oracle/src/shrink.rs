//! Delta-debugging shrinker for violating (loop, machine) pairs.
//!
//! Greedy reduction to a fixpoint: repeatedly try dropping DDG nodes,
//! then DDG edges, then machine structure (clusters, function units,
//! buses, links, ports), keeping a candidate only while the *same class*
//! of violation still reproduces. Preserving the violation kind matters:
//! without it a functional mismatch happily "shrinks" into a trivial
//! uncompilable machine, which explains nothing.
//!
//! The shrinker is deterministic — candidates are tried in a fixed order
//! and each trial re-runs the full oracle — so a reduced case replays
//! bit-for-bit from its reproducer files.

use clasp_ddg::{Ddg, DepEdge, NodeId};
use clasp_machine::{ClusterId, ClusterSpec, Interconnect, Link, MachineSpec};

use crate::oracle::{check_case, OracleOptions, OracleViolation, PipelineFn};

/// Result of shrinking one violating case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The reduced loop.
    pub graph: Ddg,
    /// The reduced machine.
    pub machine: MachineSpec,
    /// The violations the reduced case still exhibits.
    pub violations: Vec<OracleViolation>,
    /// The violation class being preserved.
    pub kind: &'static str,
    /// Oracle invocations spent.
    pub trials: usize,
}

/// Budget on oracle invocations per shrink; generous — greedy passes on
/// Table-1-sized loops use a few hundred.
const MAX_TRIALS: usize = 10_000;

/// `g` without node `victim`: survivors keep their relative order (ids
/// are re-densified) and every edge not touching `victim` survives.
fn drop_node(g: &Ddg, victim: NodeId) -> Ddg {
    let mut out = Ddg::new(g.name());
    let mut remap: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for (n, op) in g.nodes() {
        if n != victim {
            remap[n.index()] = Some(out.add_op(op.clone()));
        }
    }
    for (_, e) in g.edges() {
        if let (Some(src), Some(dst)) = (remap[e.src.index()], remap[e.dst.index()]) {
            out.add_edge(DepEdge { src, dst, ..*e });
        }
    }
    out
}

/// `g` without its `i`-th edge.
fn drop_edge(g: &Ddg, i: usize) -> Ddg {
    let mut out = Ddg::new(g.name());
    for (_, op) in g.nodes() {
        out.add_op(op.clone());
    }
    for (j, (_, e)) in g.edges().enumerate() {
        if j != i {
            out.add_edge(*e);
        }
    }
    out
}

fn clusters_of(m: &MachineSpec) -> Vec<ClusterSpec> {
    m.cluster_ids().map(|c| *m.cluster(c)).collect()
}

fn rebuild(m: &MachineSpec, clusters: Vec<ClusterSpec>, interconnect: Interconnect) -> MachineSpec {
    MachineSpec::new(m.name().to_string(), clusters, interconnect)
}

/// `m` without cluster `victim`: later clusters shift down one id, links
/// touching the victim disappear, surviving links are re-indexed. An
/// emptied point-to-point fabric degenerates to `Interconnect::None` (the
/// text format cannot express link-less point-to-point anyway).
fn drop_cluster(m: &MachineSpec, victim: ClusterId) -> Option<MachineSpec> {
    if m.cluster_count() < 2 {
        return None;
    }
    let clusters: Vec<ClusterSpec> = m
        .cluster_ids()
        .filter(|&c| c != victim)
        .map(|c| *m.cluster(c))
        .collect();
    let shift = |c: ClusterId| ClusterId(if c.0 > victim.0 { c.0 - 1 } else { c.0 });
    let interconnect = match m.interconnect() {
        Interconnect::PointToPoint {
            links,
            read_ports,
            write_ports,
        } => {
            let kept: Vec<Link> = links
                .iter()
                .filter(|l| !l.touches(victim))
                .map(|l| Link {
                    a: shift(l.a),
                    b: shift(l.b),
                })
                .collect();
            if kept.is_empty() {
                Interconnect::None
            } else {
                Interconnect::PointToPoint {
                    links: kept,
                    read_ports: *read_ports,
                    write_ports: *write_ports,
                }
            }
        }
        other => other.clone(),
    };
    Some(rebuild(m, clusters, interconnect))
}

/// All single-step machine reductions, in a fixed order: drop a cluster,
/// remove one function unit, drop a bus, drop a link, drop a port.
fn machine_reductions(m: &MachineSpec) -> Vec<MachineSpec> {
    let mut out = Vec::new();
    for c in m.cluster_ids() {
        if let Some(reduced) = drop_cluster(m, c) {
            out.push(reduced);
        }
    }
    // One unit less, per cluster and unit kind, keeping the cluster alive.
    let base = clusters_of(m);
    for (i, spec) in base.iter().enumerate() {
        for field in 0..4u32 {
            let mut s = *spec;
            let slot = match field {
                0 => &mut s.general,
                1 => &mut s.memory,
                2 => &mut s.integer,
                _ => &mut s.float,
            };
            if *slot == 0 {
                continue;
            }
            *slot -= 1;
            if s.issue_width() == 0 {
                continue;
            }
            let mut clusters = base.clone();
            clusters[i] = s;
            out.push(rebuild(m, clusters, m.interconnect().clone()));
        }
    }
    match m.interconnect() {
        Interconnect::None => {}
        Interconnect::Bus {
            buses,
            read_ports,
            write_ports,
        } => {
            if *buses > 0 {
                out.push(rebuild(
                    m,
                    base.clone(),
                    Interconnect::Bus {
                        buses: buses - 1,
                        read_ports: *read_ports,
                        write_ports: *write_ports,
                    },
                ));
            }
            for (r, w) in [
                (read_ports.saturating_sub(1), *write_ports),
                (*read_ports, write_ports.saturating_sub(1)),
            ] {
                if (r, w) != (*read_ports, *write_ports) && r > 0 && w > 0 {
                    out.push(rebuild(
                        m,
                        base.clone(),
                        Interconnect::Bus {
                            buses: *buses,
                            read_ports: r,
                            write_ports: w,
                        },
                    ));
                }
            }
        }
        Interconnect::PointToPoint {
            links,
            read_ports,
            write_ports,
        } => {
            for drop in 0..links.len() {
                let kept: Vec<Link> = links
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != drop)
                    .map(|(_, l)| *l)
                    .collect();
                let fabric = if kept.is_empty() {
                    Interconnect::None
                } else {
                    Interconnect::PointToPoint {
                        links: kept,
                        read_ports: *read_ports,
                        write_ports: *write_ports,
                    }
                };
                out.push(rebuild(m, base.clone(), fabric));
            }
            for (r, w) in [
                (read_ports.saturating_sub(1), *write_ports),
                (*read_ports, write_ports.saturating_sub(1)),
            ] {
                if (r, w) != (*read_ports, *write_ports) && r > 0 && w > 0 {
                    out.push(rebuild(
                        m,
                        base.clone(),
                        Interconnect::PointToPoint {
                            links: links.clone(),
                            read_ports: r,
                            write_ports: w,
                        },
                    ));
                }
            }
        }
    }
    out
}

/// Greedily reduce a (loop, machine) pair to a local minimum of the
/// caller's predicate: a candidate reduction is kept only while `holds`
/// still accepts it. The pair passed in is assumed to satisfy the
/// predicate; the returned pair always does.
///
/// The reduction order is fixed (nodes from the back, then edges, then
/// machine structure, to a fixpoint) and each candidate costs one
/// predicate call, so the result is deterministic for a deterministic
/// predicate. Structurally invalid candidates (empty or cyclic graphs)
/// are never offered to the predicate. Returns the reduced pair and the
/// number of predicate calls spent (capped at `max_trials`).
pub fn shrink_while(
    graph: &Ddg,
    machine: &MachineSpec,
    max_trials: usize,
    mut holds: impl FnMut(&Ddg, &MachineSpec) -> bool,
) -> (Ddg, MachineSpec, usize) {
    let mut trials = 0usize;
    let mut g = graph.clone();
    let mut m = machine.clone();

    let mut keep = |g: &Ddg, m: &MachineSpec, trials: &mut usize| -> bool {
        if *trials >= max_trials || g.node_count() == 0 || g.validate().is_err() {
            return false;
        }
        *trials += 1;
        holds(g, m)
    };

    loop {
        let mut progressed = false;
        // Pass 1: drop nodes (largest structural win first — later nodes
        // are sinks more often, so scan from the back).
        let mut i = g.node_count();
        while i > 0 {
            i -= 1;
            if g.node_count() <= 1 {
                break;
            }
            let candidate = drop_node(&g, NodeId(i as u32));
            if keep(&candidate, &m, &mut trials) {
                g = candidate;
                progressed = true;
            }
        }
        // Pass 2: drop edges.
        let mut i = g.edge_count();
        while i > 0 {
            i -= 1;
            let candidate = drop_edge(&g, i);
            if keep(&candidate, &m, &mut trials) {
                g = candidate;
                progressed = true;
            }
        }
        // Pass 3: machine reductions, restarted after every success so
        // candidate lists are regenerated against the current machine.
        let mut reduced_machine = true;
        while reduced_machine {
            reduced_machine = false;
            for candidate in machine_reductions(&m) {
                if keep(&g, &candidate, &mut trials) {
                    m = candidate;
                    progressed = true;
                    reduced_machine = true;
                    break;
                }
            }
        }
        if !progressed || trials >= max_trials {
            break;
        }
    }

    (g, m, trials)
}

/// Shrink a violating (loop, machine) pair to a local minimum while the
/// original violation class reproduces. Returns `None` when the input
/// case is clean (nothing to shrink).
pub fn shrink_case(
    graph: &Ddg,
    machine: &MachineSpec,
    pipeline: PipelineFn,
    opts: &OracleOptions,
) -> Option<ShrinkOutcome> {
    let original = check_case(graph, machine, pipeline, opts);
    let kind = original.first()?.kind();
    let mut violations = original;
    let (g, m, trials) = shrink_while(graph, machine, MAX_TRIALS, |g, m| {
        let v = check_case(g, m, pipeline, opts);
        let reproduces = v.iter().any(|x| x.kind() == kind);
        if reproduces {
            violations = v;
        }
        reproduces
    });
    Some(ShrinkOutcome {
        graph: g,
        machine: m,
        violations,
        kind,
        trials: trials + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clasp_ddg::OpKind;
    use clasp_machine::presets;

    #[test]
    fn drop_node_remaps_edges() {
        let mut g = Ddg::new("t");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        let out = drop_node(&g, b);
        assert_eq!(out.node_count(), 2);
        assert_eq!(out.edge_count(), 0);
        let out = drop_node(&g, a);
        assert_eq!(out.node_count(), 2);
        assert_eq!(out.edge_count(), 1);
        let (_, e) = out.edges().next().unwrap();
        // b,c became n0,n1.
        assert_eq!((e.src, e.dst), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn drop_cluster_reindexes_links() {
        let m = presets::four_cluster_grid(1);
        let reduced = drop_cluster(&m, ClusterId(0)).unwrap();
        assert_eq!(reduced.cluster_count(), 3);
        for l in reduced.interconnect().links() {
            assert!(l.a.index() < 3 && l.b.index() < 3);
        }
        // Grid links 0-1, 0-2, 1-3, 2-3: dropping 0 keeps 1-3 and 2-3,
        // re-indexed to 0-2 and 1-2.
        assert_eq!(reduced.interconnect().links().len(), 2);
    }

    #[test]
    fn drop_last_link_degenerates_to_none() {
        let m = MachineSpec::new(
            "two",
            vec![ClusterSpec::general(2), ClusterSpec::general(2)],
            Interconnect::PointToPoint {
                links: vec![Link {
                    a: ClusterId(0),
                    b: ClusterId(1),
                }],
                read_ports: 1,
                write_ports: 1,
            },
        );
        let reductions = machine_reductions(&m);
        assert!(reductions
            .iter()
            .any(|r| r.interconnect() == &Interconnect::None));
    }

    #[test]
    fn machine_reductions_never_produce_empty_clusters() {
        let m = presets::two_cluster_fs(2, 1);
        for r in machine_reductions(&m) {
            for c in r.cluster_ids() {
                assert!(r.cluster(c).issue_width() > 0);
            }
        }
    }
}
