//! The cross-stage differential oracle.
//!
//! For one (loop, machine) pair the oracle runs the full compilation
//! pipeline and checks every structural claim of the paper in one pass,
//! reporting typed [`OracleViolation`]s instead of panicking:
//!
//! 1. the pipeline compiles the loop at all (the paper's §3 claim that a
//!    clustering-unaware modulo scheduler accepts the annotated DDG);
//! 2. [`validate_assignment`]: cluster classes, copy transport, capacity;
//! 3. [`validate_schedule`]: dependences and kernel-row resources;
//! 4. `II >= max(RecMII, ResMII)` of the original loop (§3);
//! 5. copies never stretch a critical recurrence: the *working* graph's
//!    RecMII still fits the achieved II (§4.1);
//! 6. graceful degradation: clustered II is never better than the
//!    unified-machine baseline II (Figs. 12-19 are ratios >= 1) — unless
//!    the clustered schedule itself certifies the gap by projecting onto
//!    the unified machine at its own II, which convicts the heuristic
//!    unified sweep, not the pipeline;
//! 7. the emitted kernel is functionally equivalent to sequential
//!    semantics under *both* register models (MVE and rotating), and the
//!    two models' store streams are equivalent to each other;
//! 8. loop-carried distance across copy chains: a carried crossing
//!    edge's distance rides exactly the final delivery -> consumer
//!    segment (all upstream chain segments distance 0), and the working
//!    graph's RecMII never drops below the original loop's;
//! 10. per-hop link occupancy: on point-to-point fabrics every traversed
//!     link row is claimed by at most one copy — recounted directly from
//!     the final schedule and the copy metadata, independent of the MRT
//!     bookkeeping the scheduler and `validate_schedule` share.
//!
//! The pipeline arrives as a caller-supplied closure ([`PipelineFn`]) so
//! this crate never depends on the root `clasp` crate; `clasp` exposes
//! [`compile_full`] bound to this signature (see `clasp::oracle_pipeline`).
//!
//! [`compile_full`]: https://docs.rs/clasp

use clasp_core::{validate_assignment, Assignment, AssignmentError};
use clasp_ddg::{rec_mii, Ddg, NodeId};
use clasp_kernel::{emit_program_with, reference_stream, run_program, RegisterModel, StoreEvent};
use clasp_machine::{Interconnect, LinkId, MachineSpec};
use clasp_mrt::ClusterMap;
use clasp_sched::{
    max_ii_bound, unified_map, validate_schedule, SchedContext, Schedule, ScheduleError,
    SchedulerConfig,
};
use std::collections::HashMap;
use std::fmt;

use crate::fault::Fault;

/// The pipeline output the oracle inspects: the cluster assignment and
/// the final (restaged) schedule the kernel is emitted from.
#[derive(Debug, Clone)]
pub struct CompiledCase {
    /// Phase-1 output: working graph (with copies) and cluster map.
    pub assignment: Assignment,
    /// The schedule the kernel is emitted from.
    pub schedule: Schedule,
}

/// The compilation pipeline, injected by the caller. Errors are
/// stringified: the oracle only needs to report them, never match on
/// them. `Sync` because the fuzz loop checks cases on the deterministic
/// parallel executor (`clasp-exec`), sharing the closure across workers.
pub type PipelineFn<'a> = &'a (dyn Fn(&Ddg, &MachineSpec) -> Result<CompiledCase, String> + Sync);

/// Per-case oracle knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Trip count for functional simulation.
    pub iterations: i64,
    /// Deliberate corruption applied to the compiled case before the
    /// invariant checks (testing the oracle itself; see [`Fault`]).
    pub fault: Fault,
    /// Cross-check the achieved II against the exact SAT backend
    /// (`clasp-exact`) on small loops: invariant 9,
    /// `heuristic II >= exact II`. Off by default — each check costs a
    /// SAT solve per candidate II.
    pub exact: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            iterations: 8,
            fault: Fault::None,
            exact: false,
        }
    }
}

/// Node cap for the exact cross-check: past this the SAT solve is not
/// worth a fuzz case's budget (tighter than `clasp-exact`'s own default
/// cap, which serves interactive compiles).
pub const EXACT_ORACLE_NODE_CAP: usize = 12;

/// One invariant breach found by [`check_case`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// The pipeline refused the case outright.
    PipelineFailed {
        /// The pipeline's own error rendering.
        reason: String,
    },
    /// The assignment fails [`validate_assignment`].
    AssignmentInvalid {
        /// The typed assignment violation.
        error: AssignmentError,
    },
    /// The schedule fails [`validate_schedule`].
    ScheduleInvalid {
        /// The typed schedule violation.
        error: ScheduleError,
    },
    /// The achieved II undercuts the loop's `max(RecMII, ResMII)`.
    IiBelowMii {
        /// Achieved II.
        ii: u32,
        /// The machine-wide lower bound for the original loop.
        mii: u32,
    },
    /// Copies landed on a critical recurrence: the working graph's RecMII
    /// exceeds the achieved II (§4.1's "copies off the critical SCC").
    CopyOnCriticalRecurrence {
        /// RecMII of the working graph (with copies).
        working_rec_mii: u32,
        /// Achieved II.
        ii: u32,
    },
    /// The clustered II beats the unified baseline *and* the clustered
    /// schedule does not even project onto the unified machine at its own
    /// II. A bare `clustered < unified` gap is explainable (iterative
    /// modulo scheduling is budget-bounded, so the unified sweep can miss
    /// a feasible II); an unprojectable one is not.
    ClusteredBeatsUnified {
        /// Clustered II.
        clustered: u32,
        /// Unified-machine II.
        unified: u32,
    },
    /// The emitted kernel diverged from sequential semantics.
    FunctionalMismatch {
        /// Register model that diverged (`"MVE"` or `"rotating"`).
        model: &'static str,
        /// The simulator's rendering of the divergence.
        error: String,
    },
    /// The MVE and rotating kernels produced different store streams.
    ModelDivergence {
        /// Store events observed under MVE.
        mve_events: usize,
        /// Store events observed under the rotating file.
        rotating_events: usize,
    },
    /// A loop-carried crossing edge was rewired through a copy chain that
    /// mishandles its distance. The contract (`clasp-core`'s
    /// `materialize`) is that the full distance rides exactly the final
    /// delivery -> consumer segment and every upstream chain segment is
    /// distance 0 — smearing or duplicating it would shift the carried
    /// dependence by whole iterations per hop.
    CarriedDistanceSplit {
        /// Producer of the original carried edge.
        producer: NodeId,
        /// Consumer of the original carried edge.
        consumer: NodeId,
        /// What exactly went wrong along the chain.
        detail: String,
    },
    /// The working graph's RecMII dropped below the original loop's:
    /// rewiring lost carried distance (or a whole recurrence edge), so a
    /// schedule could undercut the true recurrence bound.
    RecMiiDropped {
        /// RecMII of the original loop.
        original: u32,
        /// RecMII of the working graph (with copies).
        working: u32,
    },
    /// Checking the case panicked outright. The parallel fuzz loop
    /// captures the panic per case (instead of tearing the whole sweep
    /// down) and reports it here.
    CheckPanicked {
        /// The panic payload, stringified.
        payload: String,
    },
    /// Two or more copies claim the same point-to-point link in the same
    /// kernel row. Each link moves one value per cycle, so every hop of a
    /// multi-hop route must hold its own (link, row) slot; sharing one
    /// means the emitted kernel would serialize transfers the schedule
    /// promised were parallel. Recounted directly from the final schedule
    /// and copy metadata — deliberately *not* through the MRT, so a
    /// shared undercounting bug cannot hide itself.
    LinkOverCapacity {
        /// The oversubscribed link.
        link: LinkId,
        /// The kernel row (cycle mod II) it is oversubscribed in.
        row: u32,
        /// Copies claiming the link in that row.
        used: u32,
    },
    /// The heuristic achieved an II *below* what the exact SAT backend
    /// proved minimal — impossible for a sound exact backend, so one of
    /// the two is wrong. Only reported when the heuristic's own routing
    /// is chain-free (single-hop copies), since the exact encoding does
    /// not model multi-hop copy chains and its "minimal" II is only a
    /// bound over chain-free schedules.
    HeuristicBeatsExact {
        /// The heuristic's achieved II.
        heuristic: u32,
        /// The II the exact backend proved minimal.
        exact: u32,
    },
}

impl OracleViolation {
    /// A stable label for the violation class; the shrinker preserves
    /// this while minimizing (so a functional bug never "shrinks" into an
    /// unrelated compile failure).
    pub fn kind(&self) -> &'static str {
        match self {
            OracleViolation::PipelineFailed { .. } => "pipeline-failed",
            OracleViolation::AssignmentInvalid { .. } => "assignment-invalid",
            OracleViolation::ScheduleInvalid { .. } => "schedule-invalid",
            OracleViolation::IiBelowMii { .. } => "ii-below-mii",
            OracleViolation::CopyOnCriticalRecurrence { .. } => "copy-on-critical-recurrence",
            OracleViolation::ClusteredBeatsUnified { .. } => "clustered-beats-unified",
            OracleViolation::FunctionalMismatch { .. } => "functional-mismatch",
            OracleViolation::ModelDivergence { .. } => "model-divergence",
            OracleViolation::CarriedDistanceSplit { .. } => "carried-distance-split",
            OracleViolation::RecMiiDropped { .. } => "rec-mii-dropped",
            OracleViolation::CheckPanicked { .. } => "check-panicked",
            OracleViolation::LinkOverCapacity { .. } => "link-over-capacity",
            OracleViolation::HeuristicBeatsExact { .. } => "heuristic-beats-exact",
        }
    }
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::PipelineFailed { reason } => write!(f, "pipeline failed: {reason}"),
            OracleViolation::AssignmentInvalid { error } => {
                write!(f, "assignment invalid: {error}")
            }
            OracleViolation::ScheduleInvalid { error } => write!(f, "schedule invalid: {error}"),
            OracleViolation::IiBelowMii { ii, mii } => {
                write!(f, "achieved II {ii} undercuts MII {mii}")
            }
            OracleViolation::CopyOnCriticalRecurrence {
                working_rec_mii,
                ii,
            } => write!(
                f,
                "copies stretched a critical recurrence: working RecMII {working_rec_mii} > II {ii}"
            ),
            OracleViolation::ClusteredBeatsUnified { clustered, unified } => write!(
                f,
                "clustered II {clustered} beats the unified baseline II {unified}"
            ),
            OracleViolation::FunctionalMismatch { model, error } => {
                write!(
                    f,
                    "{model} kernel diverged from sequential semantics: {error}"
                )
            }
            OracleViolation::ModelDivergence {
                mve_events,
                rotating_events,
            } => write!(
                f,
                "MVE and rotating kernels diverged ({mve_events} vs {rotating_events} store events)"
            ),
            OracleViolation::CarriedDistanceSplit {
                producer,
                consumer,
                detail,
            } => write!(
                f,
                "carried edge {producer} -> {consumer} mishandled across its copy chain: {detail}"
            ),
            OracleViolation::RecMiiDropped { original, working } => write!(
                f,
                "working-graph RecMII {working} dropped below the original loop's {original}"
            ),
            OracleViolation::CheckPanicked { payload } => {
                write!(f, "case check panicked: {payload}")
            }
            OracleViolation::LinkOverCapacity { link, row, used } => write!(
                f,
                "{used} copies claim link {link} in kernel row {row} (capacity 1)"
            ),
            OracleViolation::HeuristicBeatsExact { heuristic, exact } => write!(
                f,
                "heuristic II {heuristic} beats the exact backend's proven minimum {exact}"
            ),
        }
    }
}

/// The II the loop achieves on the machine's unified equivalent, or
/// `None` when even the unified machine cannot schedule it (a corpus
/// pathology, not a clustered-pipeline bug — the caller skips invariant
/// 6 rather than reporting it).
pub fn unified_baseline_ii(g: &Ddg, machine: &MachineSpec) -> Option<u32> {
    let unified = machine.unified_equivalent();
    let mii = unified.mii(g);
    if mii == u32::MAX {
        return None;
    }
    let map = unified_map(g, &unified);
    let cap = max_ii_bound(g, mii);
    let mut ctx = SchedContext::new(g, &unified, &map).ok()?;
    ctx.schedule_in_range(mii.max(1), cap, SchedulerConfig::default())
        .ok()
        .map(|s| s.ii())
}

/// Whether the clustered schedule, restricted to the original nodes, is
/// itself a valid unified-machine schedule at the same II. When it is,
/// the unified optimum is provably <= the clustered II, so a heuristic
/// unified baseline *above* the clustered II is scheduler weakness
/// (bounded backtracking budget), not an invariant breach.
fn projects_onto_unified(g: &Ddg, machine: &MachineSpec, sched: &Schedule) -> bool {
    let unified = machine.unified_equivalent();
    let map = unified_map(g, &unified);
    let mut time = HashMap::new();
    for n in g.node_ids() {
        match sched.start(n) {
            Some(t) => {
                time.insert(n, t);
            }
            None => return false,
        }
    }
    validate_schedule(g, &unified, &map, &Schedule::new(sched.ii(), time)).is_ok()
}

/// The original (non-copy) node a copy chain is rooted at: walk feed
/// edges backward until a non-copy node. `None` on a malformed chain
/// (a copy with no feed, or a cycle of copies).
fn chain_root(wg: &Ddg, copy: NodeId) -> Option<NodeId> {
    let mut cur = copy;
    let mut hops = 0usize;
    while wg.op(cur).kind.is_copy() {
        let (_, feed) = wg.pred_edges(cur).next()?;
        cur = feed.src;
        hops += 1;
        if hops > wg.node_count() {
            return None;
        }
    }
    Some(cur)
}

/// Invariant 8 — carried distance across copy chains (§4.1's rewiring
/// contract). Every loop-carried edge of the original graph must either
/// survive verbatim in the working graph (same-cluster) or be rewired
/// through a copy chain whose *final* delivery -> consumer segment
/// carries the full original distance, with every upstream segment
/// (producer -> copy, copy -> copy) at distance 0. Distance on more
/// than one segment — or on the wrong one — shifts the dependence by
/// whole iterations per hop, which RecMII and the functional simulator
/// only catch indirectly (and only when the shift is observable at the
/// tested trip count).
fn check_carried_chains(g: &Ddg, wg: &Ddg) -> Vec<OracleViolation> {
    let mut out = Vec::new();
    for (_, e) in g.edges() {
        if e.distance == 0 {
            continue;
        }
        let kept_verbatim = wg
            .edges()
            .any(|(_, w)| w.src == e.src && w.dst == e.dst && w.distance == e.distance);
        if kept_verbatim {
            continue;
        }
        // Rewired: the consumer must receive the value from a copy chain
        // rooted at the producer. Parallel original edges (same endpoints,
        // different distances) are each rewired to their own delivery
        // edge, so match the delivery by distance rather than taking the
        // first chain into the consumer.
        let candidates: Vec<clasp_ddg::DepEdge> = wg
            .edges()
            .filter(|(_, w)| {
                w.dst == e.dst
                    && wg.op(w.src).kind.is_copy()
                    && chain_root(wg, w.src) == Some(e.src)
            })
            .map(|(_, w)| *w)
            .collect();
        if candidates.is_empty() {
            out.push(OracleViolation::CarriedDistanceSplit {
                producer: e.src,
                consumer: e.dst,
                detail: format!(
                    "carried distance {} lost: neither a verbatim edge nor a copy-chain delivery",
                    e.distance
                ),
            });
            continue;
        }
        let Some(delivery) = candidates.iter().find(|w| w.distance == e.distance) else {
            let seen: Vec<String> = candidates.iter().map(|w| w.distance.to_string()).collect();
            out.push(OracleViolation::CarriedDistanceSplit {
                producer: e.src,
                consumer: e.dst,
                detail: format!(
                    "delivery segment carries distance {} instead of {}",
                    seen.join("/"),
                    e.distance
                ),
            });
            continue;
        };
        let mut cur = delivery.src;
        while wg.op(cur).kind.is_copy() {
            let Some((_, feed)) = wg.pred_edges(cur).next() else {
                break; // chain_root already vetted the chain shape
            };
            if feed.distance != 0 {
                out.push(OracleViolation::CarriedDistanceSplit {
                    producer: e.src,
                    consumer: e.dst,
                    detail: format!(
                        "chain segment {} -> {} carries distance {} (must be 0)",
                        feed.src, feed.dst, feed.distance
                    ),
                });
            }
            cur = feed.src;
        }
    }
    out
}

/// Invariant 10 — per-hop link occupancy. On point-to-point fabrics
/// every copy claims exactly one link for the kernel row it issues in,
/// and a link moves one value per cycle; a multi-hop route therefore
/// holds one (link, row) slot per traversed hop. This recounts occupancy
/// directly from the final schedule and the copy metadata rather than
/// replaying an MRT, so it cross-checks the CountMrt/TimeMrt bookkeeping
/// instead of inheriting its bugs. Unscheduled copies are skipped —
/// invariant 3 already reports those.
fn check_link_occupancy(
    machine: &MachineSpec,
    map: &ClusterMap,
    sched: &Schedule,
) -> Vec<OracleViolation> {
    if !matches!(machine.interconnect(), Interconnect::PointToPoint { .. }) {
        return Vec::new();
    }
    let mut used: HashMap<(LinkId, u32), u32> = HashMap::new();
    for (copy, meta) in map.copies() {
        let Some(link) = meta.link else { continue };
        let Some(row) = sched.kernel_row(copy) else {
            continue;
        };
        *used.entry((link, row)).or_insert(0) += 1;
    }
    let mut out: Vec<OracleViolation> = used
        .into_iter()
        .filter(|&(_, n)| n > 1)
        .map(|((link, row), used)| OracleViolation::LinkOverCapacity { link, row, used })
        .collect();
    out.sort_by_key(|v| match v {
        OracleViolation::LinkOverCapacity { link, row, .. } => (*link, *row),
        _ => unreachable!("only link violations collected here"),
    });
    out
}

/// Whether the working graph routes every crossing value in a single
/// hop: no edge connects two copy nodes. The exact encoding only models
/// single-hop routing, so its minimal II is incomparable with a
/// heuristic schedule that leaned on copy *chains*.
fn chain_free(wg: &Ddg) -> bool {
    !wg.edges()
        .any(|(_, e)| wg.op(e.src).kind.is_copy() && wg.op(e.dst).kind.is_copy())
}

/// The exact backend's resource caps as the oracle uses them: the
/// tighter [`EXACT_ORACLE_NODE_CAP`] instead of the interactive default.
fn exact_oracle_config() -> clasp_exact::ExactConfig {
    clasp_exact::ExactConfig {
        max_nodes: EXACT_ORACLE_NODE_CAP,
        ..clasp_exact::ExactConfig::default()
    }
}

/// The provably minimal chain-free II of `g` on `machine`, or `None`
/// when the instance is over the oracle's node cap, the solve blows its
/// conflict budget, or no feasible II exists in the search range. Used
/// both by invariant 9 and by the fuzz loop's hard-instance mining.
pub fn exact_minimal_ii(g: &Ddg, machine: &MachineSpec) -> Option<u32> {
    clasp_exact::exact_ii(g, machine, exact_oracle_config()).ok()
}
/// `None` when equal, otherwise a description of the first divergence.
fn diff_streams(got: &[StoreEvent], expected: &[StoreEvent]) -> Option<String> {
    if got.len() != expected.len() {
        return Some(format!(
            "{} store events, expected {}",
            got.len(),
            expected.len()
        ));
    }
    let index: HashMap<(NodeId, i64), u64> = expected
        .iter()
        .map(|e| ((e.node, e.iteration), e.value))
        .collect();
    for e in got {
        match index.get(&(e.node, e.iteration)) {
            Some(&v) if v == e.value => {}
            Some(&v) => {
                return Some(format!(
                    "store {} iteration {}: got {:#x}, expected {v:#x}",
                    e.node, e.iteration, e.value
                ))
            }
            None => {
                return Some(format!(
                    "unexpected store event for {} iteration {}",
                    e.node, e.iteration
                ))
            }
        }
    }
    None
}

/// Run every invariant against one (loop, machine) pair. Returns all
/// violations found (empty = the case is clean).
///
/// Structural violations (2-6) are collected together; the functional
/// stage (7) only runs when the assignment and schedule validate, since
/// emitting a kernel from a corrupt schedule exercises nothing but the
/// corruption.
pub fn check_case(
    g: &Ddg,
    machine: &MachineSpec,
    pipeline: PipelineFn,
    opts: &OracleOptions,
) -> Vec<OracleViolation> {
    let mut case = match pipeline(g, machine) {
        Ok(c) => c,
        Err(reason) => return vec![OracleViolation::PipelineFailed { reason }],
    };
    opts.fault.apply(&mut case, machine);

    let mut violations = Vec::new();
    let assignment_ok = match validate_assignment(g, machine, &case.assignment) {
        Ok(()) => true,
        Err(error) => {
            violations.push(OracleViolation::AssignmentInvalid { error });
            false
        }
    };
    let wg = &case.assignment.graph;
    let map = &case.assignment.map;
    let sched = &case.schedule;
    let ii = sched.ii();
    let schedule_ok = match validate_schedule(wg, machine, map, sched) {
        Ok(()) => true,
        Err(error) => {
            violations.push(OracleViolation::ScheduleInvalid { error });
            false
        }
    };

    let mii = machine.mii(g);
    if mii != u32::MAX && ii < mii {
        violations.push(OracleViolation::IiBelowMii { ii, mii });
    }
    let working_rec_mii = rec_mii(wg);
    if working_rec_mii > ii {
        violations.push(OracleViolation::CopyOnCriticalRecurrence {
            working_rec_mii,
            ii,
        });
    }
    let original_rec_mii = rec_mii(g);
    if working_rec_mii < original_rec_mii {
        violations.push(OracleViolation::RecMiiDropped {
            original: original_rec_mii,
            working: working_rec_mii,
        });
    }
    violations.extend(check_carried_chains(g, wg));
    violations.extend(check_link_occupancy(machine, map, sched));
    if let Some(unified) = unified_baseline_ii(g, machine) {
        if ii < unified && !projects_onto_unified(g, machine, sched) {
            violations.push(OracleViolation::ClusteredBeatsUnified {
                clustered: ii,
                unified,
            });
        }
    }

    // Invariant 9 — optimality oracle: the exact SAT backend's proven
    // minimal II lower-bounds any valid heuristic schedule that the
    // encoding can express (chain-free routing). Skipped when the solve
    // is refused or blows its budget (`exact_minimal_ii` -> None): an
    // unproved bound convicts nobody.
    if opts.exact && assignment_ok && schedule_ok && chain_free(wg) {
        if let Some(exact) = exact_minimal_ii(g, machine) {
            if ii < exact {
                violations.push(OracleViolation::HeuristicBeatsExact {
                    heuristic: ii,
                    exact,
                });
            }
        }
    }

    if assignment_ok && schedule_ok {
        let reference = reference_stream(wg, opts.iterations);
        let mut streams: Vec<(&'static str, Option<Vec<StoreEvent>>)> = Vec::new();
        for (name, model) in [
            ("MVE", RegisterModel::mve(wg, sched)),
            ("rotating", RegisterModel::rotating(wg, sched)),
        ] {
            let program = emit_program_with(wg, map, sched, opts.iterations, &model);
            match run_program(wg, &program) {
                Ok(events) => {
                    if let Some(error) = diff_streams(&events, &reference) {
                        violations.push(OracleViolation::FunctionalMismatch { model: name, error });
                    }
                    streams.push((name, Some(events)));
                }
                Err(error) => {
                    violations.push(OracleViolation::FunctionalMismatch {
                        model: name,
                        error: error.to_string(),
                    });
                    streams.push((name, None));
                }
            }
        }
        if let [(_, Some(mve)), (_, Some(rot))] = &streams[..] {
            if diff_streams(mve, rot).is_some() {
                violations.push(OracleViolation::ModelDivergence {
                    mve_events: mve.len(),
                    rotating_events: rot.len(),
                });
            }
        }
    }
    violations
}
