//! Integration tests: the oracle against the real `compile_full`
//! pipeline (`clasp::oracle_pipeline`, dev-dependency binding).
//!
//! Covers the PR's acceptance criteria end to end: a deterministic
//! seed-0 case stream with zero violations, deliberate fault injection
//! that the oracle detects, shrinking of a faulty case to a handful of
//! nodes, and bit-for-bit deterministic replay from reproducer text.

use clasp::oracle_pipeline;
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::presets;
use clasp_oracle::{
    check_case, run_fuzz, run_fuzz_with_repros, shrink_case, Fault, FuzzConfig, OracleOptions,
};
use clasp_text::{parse_loop, parse_machine, write_loop, write_machine};

/// sum += x[i] * y[i], the crate-level doctest loop: small, has a
/// recurrence, crosses clusters under any two-cluster split.
fn dot_product() -> Ddg {
    let mut g = Ddg::new("dot");
    let x = g.add(OpKind::Load);
    let y = g.add(OpKind::Load);
    let m = g.add(OpKind::FpMult);
    let s = g.add(OpKind::FpAdd);
    let st = g.add(OpKind::Store);
    g.add_dep(x, m);
    g.add_dep(y, m);
    g.add_dep(m, s);
    g.add_dep(s, st);
    g.add_dep_carried(s, s, 1);
    g
}

#[test]
fn seed_zero_stream_is_clean() {
    // A slice of the CI smoke job's stream (which runs 500 via the CLI);
    // enough to cover every generator style in-process.
    let config = FuzzConfig {
        seed: 0,
        cases: 120,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config, &oracle_pipeline);
    assert_eq!(report.checked, 120);
    for failure in &report.failures {
        eprintln!(
            "case {} ({} nodes, machine {}):",
            failure.case.index,
            failure.case.graph.node_count(),
            failure.case.machine.name()
        );
        for v in &failure.violations {
            eprintln!("  [{}] {v}", v.kind());
        }
    }
    assert!(
        report.is_clean(),
        "{} violating cases",
        report.failures.len()
    );
}

#[test]
fn skew_fault_is_detected() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::SkewSchedule,
        ..OracleOptions::default()
    };
    let violations = check_case(&g, &machine, &oracle_pipeline, &opts);
    assert!(
        violations.iter().any(|v| v.kind() == "schedule-invalid"),
        "skew must break a dependence: {violations:?}"
    );
}

#[test]
fn misplace_fault_is_detected() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::MisplaceNode,
        ..OracleOptions::default()
    };
    let violations = check_case(&g, &machine, &oracle_pipeline, &opts);
    assert!(
        !violations.is_empty(),
        "moving node 0 across clusters must violate an invariant"
    );
}

#[test]
fn skew_fault_shrinks_small_and_replays_deterministically() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::SkewSchedule,
        ..OracleOptions::default()
    };

    let outcome = shrink_case(&g, &machine, &oracle_pipeline, &opts)
        .expect("faulty case must have something to shrink");
    assert_eq!(outcome.kind, "schedule-invalid");
    assert!(
        outcome.graph.node_count() <= 8,
        "shrinker left {} nodes",
        outcome.graph.node_count()
    );

    // Determinism: a second shrink of the same case lands on the same
    // reduced pair, textually.
    let again = shrink_case(&g, &machine, &oracle_pipeline, &opts).unwrap();
    assert_eq!(write_loop(&again.graph), write_loop(&outcome.graph));
    assert_eq!(
        write_machine(&again.machine),
        write_machine(&outcome.machine)
    );

    // Replay: the reduced pair survives a text round-trip and still
    // exhibits the same violation class.
    let replayed_g = parse_loop(&write_loop(&outcome.graph)).unwrap();
    let replayed_m = parse_machine(&write_machine(&outcome.machine)).unwrap();
    let replayed = check_case(&replayed_g, &replayed_m, &oracle_pipeline, &opts);
    assert!(
        replayed.iter().any(|v| v.kind() == outcome.kind),
        "reproducer must replay the original violation class: {replayed:?}"
    );
}

#[test]
fn faulty_fuzz_run_writes_reproducers() {
    let dir = std::env::temp_dir().join("clasp-oracle-test-repros");
    let _ = std::fs::remove_dir_all(&dir);
    let config = FuzzConfig {
        seed: 7,
        cases: 6,
        fault: Fault::SkewSchedule,
        ..FuzzConfig::default()
    };
    let report = run_fuzz_with_repros(&config, &oracle_pipeline, &dir).unwrap();
    assert!(!report.is_clean(), "skewed schedules must fail the oracle");
    assert_eq!(report.repro_files.len(), report.failures.len() * 2);
    for path in &report.repro_files {
        assert!(path.exists(), "missing reproducer {}", path.display());
    }
    // Reproducer loops parse back (comment header included).
    let loop_file = report
        .repro_files
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "clasp"))
        .unwrap();
    let text = std::fs::read_to_string(loop_file).unwrap();
    assert!(text.starts_with("# fuzz reproducer"));
    parse_loop(&text).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
