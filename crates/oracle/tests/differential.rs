//! Integration tests: the oracle against the real `compile_full`
//! pipeline (`clasp::oracle_pipeline`, dev-dependency binding).
//!
//! Covers the PR's acceptance criteria end to end: a deterministic
//! seed-0 case stream with zero violations, deliberate fault injection
//! that the oracle detects, shrinking of a faulty case to a handful of
//! nodes, and bit-for-bit deterministic replay from reproducer text.

use clasp::oracle_pipeline;
use clasp_ddg::{Ddg, OpKind};
use clasp_machine::presets;
use clasp_oracle::{
    check_case, run_fuzz, run_fuzz_with_repros, shrink_case, Fault, FuzzConfig, OracleOptions,
};
use clasp_text::{parse_loop, parse_machine, write_loop, write_machine};

/// sum += x[i] * y[i], the crate-level doctest loop: small, has a
/// recurrence, crosses clusters under any two-cluster split.
fn dot_product() -> Ddg {
    let mut g = Ddg::new("dot");
    let x = g.add(OpKind::Load);
    let y = g.add(OpKind::Load);
    let m = g.add(OpKind::FpMult);
    let s = g.add(OpKind::FpAdd);
    let st = g.add(OpKind::Store);
    g.add_dep(x, m);
    g.add_dep(y, m);
    g.add_dep(m, s);
    g.add_dep(s, st);
    g.add_dep_carried(s, s, 1);
    g
}

#[test]
fn seed_zero_stream_is_clean() {
    // A slice of the CI smoke job's stream (which runs 500 via the CLI);
    // enough to cover every generator style in-process.
    let config = FuzzConfig {
        seed: 0,
        cases: 120,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config, &oracle_pipeline);
    assert_eq!(report.checked, 120);
    for failure in &report.failures {
        eprintln!(
            "case {} ({} nodes, machine {}):",
            failure.case.index,
            failure.case.graph.node_count(),
            failure.case.machine.name()
        );
        for v in &failure.violations {
            eprintln!("  [{}] {v}", v.kind());
        }
    }
    assert!(
        report.is_clean(),
        "{} violating cases",
        report.failures.len()
    );
}

#[test]
fn skew_fault_is_detected() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::SkewSchedule,
        ..OracleOptions::default()
    };
    let violations = check_case(&g, &machine, &oracle_pipeline, &opts);
    assert!(
        violations.iter().any(|v| v.kind() == "schedule-invalid"),
        "skew must break a dependence: {violations:?}"
    );
}

#[test]
fn misplace_fault_is_detected() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::MisplaceNode,
        ..OracleOptions::default()
    };
    let violations = check_case(&g, &machine, &oracle_pipeline, &opts);
    assert!(
        !violations.is_empty(),
        "moving node 0 across clusters must violate an invariant"
    );
}

#[test]
fn skew_fault_shrinks_small_and_replays_deterministically() {
    let g = dot_product();
    let machine = presets::two_cluster_gp(2, 1);
    let opts = OracleOptions {
        fault: Fault::SkewSchedule,
        ..OracleOptions::default()
    };

    let outcome = shrink_case(&g, &machine, &oracle_pipeline, &opts)
        .expect("faulty case must have something to shrink");
    assert_eq!(outcome.kind, "schedule-invalid");
    assert!(
        outcome.graph.node_count() <= 8,
        "shrinker left {} nodes",
        outcome.graph.node_count()
    );

    // Determinism: a second shrink of the same case lands on the same
    // reduced pair, textually.
    let again = shrink_case(&g, &machine, &oracle_pipeline, &opts).unwrap();
    assert_eq!(write_loop(&again.graph), write_loop(&outcome.graph));
    assert_eq!(
        write_machine(&again.machine),
        write_machine(&outcome.machine)
    );

    // Replay: the reduced pair survives a text round-trip and still
    // exhibits the same violation class.
    let replayed_g = parse_loop(&write_loop(&outcome.graph)).unwrap();
    let replayed_m = parse_machine(&write_machine(&outcome.machine)).unwrap();
    let replayed = check_case(&replayed_g, &replayed_m, &oracle_pipeline, &opts);
    assert!(
        replayed.iter().any(|v| v.kind() == outcome.kind),
        "reproducer must replay the original violation class: {replayed:?}"
    );
}

#[test]
fn faulty_fuzz_run_writes_reproducers() {
    let dir = std::env::temp_dir().join("clasp-oracle-test-repros");
    let _ = std::fs::remove_dir_all(&dir);
    let config = FuzzConfig {
        seed: 7,
        cases: 6,
        fault: Fault::SkewSchedule,
        ..FuzzConfig::default()
    };
    let report = run_fuzz_with_repros(&config, &oracle_pipeline, &dir).unwrap();
    assert!(!report.is_clean(), "skewed schedules must fail the oracle");
    assert_eq!(report.repro_files.len(), report.failures.len() * 2);
    for path in &report.repro_files {
        assert!(path.exists(), "missing reproducer {}", path.display());
    }
    // Reproducer loops parse back (comment header included).
    let loop_file = report
        .repro_files
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "clasp"))
        .unwrap();
    let text = std::fs::read_to_string(loop_file).unwrap();
    assert!(text.starts_with("# fuzz reproducer"));
    parse_loop(&text).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Three clusters in a line (C0 - C1 - C2) with memory units only on C0
/// and float units only on C2: any load -> float value must ride a
/// two-hop copy chain through C1.
fn three_cluster_line() -> clasp_machine::MachineSpec {
    use clasp_machine::{ClusterId, ClusterSpec, Interconnect, Link, MachineSpec};
    MachineSpec::new(
        "3c-line",
        vec![
            ClusterSpec::specialized(2, 2, 0), // C0: memory + integer
            ClusterSpec::specialized(0, 2, 0), // C1: integer only
            ClusterSpec::specialized(0, 2, 2), // C2: integer + float
        ],
        Interconnect::PointToPoint {
            links: vec![
                Link {
                    a: ClusterId(0),
                    b: ClusterId(1),
                },
                Link {
                    a: ClusterId(1),
                    b: ClusterId(2),
                },
            ],
            read_ports: 2,
            write_ports: 2,
        },
    )
}

/// A loop whose carried load -> fadd edge is forced across the full
/// line: the load can only live on C0, the fadd only on C2.
fn line_carried_loop() -> (Ddg, clasp_ddg::NodeId, clasp_ddg::NodeId) {
    let mut g = Ddg::new("line-carried");
    let ld = g.add(OpKind::Load);
    let f = g.add(OpKind::FpAdd);
    let st = g.add(OpKind::Store);
    g.add_dep_carried(ld, f, 2); // multi-hop carried crossing
    g.add_dep_carried(f, f, 1); // recurrence: RecMII is nontrivial
    g.add_dep(f, st);
    (g, ld, f)
}

/// Regression (carried distance across multi-hop chains): the original
/// distance lands on exactly the final delivery -> consumer segment of
/// the chain, every upstream segment is distance 0, and the working
/// graph's RecMII never drops below the original loop's.
#[test]
fn multi_hop_carried_chain_keeps_distance_on_final_segment() {
    use clasp_ddg::rec_mii;

    let (g, ld, f) = line_carried_loop();
    let m = three_cluster_line();
    let compiled = oracle_pipeline(&g, &m).expect("line machine must compile the loop");
    let wg = &compiled.assignment.graph;

    // The carried edge was rewired: its delivery into `f` keeps the full
    // distance, and its source is a copy.
    let delivery = wg
        .edges()
        .find(|(_, e)| e.dst == f && e.distance == 2)
        .map(|(_, e)| *e)
        .expect("carried delivery edge into the fadd");
    assert!(
        wg.op(delivery.src).kind.is_copy(),
        "carried crossing edge must be fed by a copy"
    );

    // Walk the chain back to the producer: >= 2 copies (multi-hop), and
    // every feed segment is distance 0.
    let mut cur = delivery.src;
    let mut hops = 0;
    while wg.op(cur).kind.is_copy() {
        let (_, feed) = wg.pred_edges(cur).next().expect("copy has a feed edge");
        assert_eq!(
            feed.distance, 0,
            "chain segment {} -> {} must carry distance 0",
            feed.src, feed.dst
        );
        cur = feed.src;
        hops += 1;
    }
    assert_eq!(cur, ld, "chain must be rooted at the load");
    assert!(hops >= 2, "C0 -> C2 needs at least two hops, got {hops}");

    // RecMII preserved (the f -> f recurrence survives verbatim).
    assert!(rec_mii(wg) >= rec_mii(&g));

    // And the oracle agrees the case is clean end to end.
    let violations = check_case(&g, &m, &oracle_pipeline, &OracleOptions::default());
    assert!(violations.is_empty(), "{violations:?}");
}

/// Regression (case 0199 of the seed-0 stream): an edge whose latency
/// exceeds its producer's kind latency — casegen's perturbations make
/// these — must not lose the excess when rewired through a copy chain.
/// The feed edge only carries the kind latency, so `materialize` tops up
/// the delivery edge; dropping the excess shortened a carried dependence
/// and let the working graph's RecMII fall below the loop's true bound.
#[test]
fn perturbed_edge_latency_survives_chain_rewiring() {
    use clasp_ddg::{rec_mii, DepEdge};

    let m = three_cluster_line();
    let mut g = Ddg::new("perturbed");
    let ld = g.add(OpKind::Load);
    let f = g.add(OpKind::FpAdd);
    let st = g.add(OpKind::Store);
    let perturbed = OpKind::Load.latency() + 7;
    g.add_edge(DepEdge {
        src: ld,
        dst: f,
        latency: perturbed,
        distance: 2,
    });
    g.add_dep_carried(f, f, 1);
    g.add_dep(f, st);

    let compiled = oracle_pipeline(&g, &m).expect("line machine must compile the loop");
    let wg = &compiled.assignment.graph;

    // Sum the rewired chain's latency end to end: delivery into `f`,
    // then feed segments back to the load.
    let delivery = wg
        .edges()
        .find(|(_, e)| e.dst == f && e.distance == 2)
        .map(|(_, e)| *e)
        .expect("carried delivery edge into the fadd");
    let mut total = delivery.latency;
    let mut cur = delivery.src;
    while wg.op(cur).kind.is_copy() {
        let (_, feed) = wg.pred_edges(cur).next().expect("copy has a feed edge");
        total += feed.latency;
        cur = feed.src;
    }
    assert_eq!(cur, ld);
    assert!(
        total >= perturbed,
        "chain latency {total} dropped below the original edge's {perturbed}"
    );
    assert!(rec_mii(wg) >= rec_mii(&g));

    let violations = check_case(&g, &m, &oracle_pipeline, &OracleOptions::default());
    assert!(violations.is_empty(), "{violations:?}");
}

/// Regression (per-hop link occupancy): on mesh/torus presets — 1-wide
/// PEs, so crossings are constant and routes are multi-hop — every
/// compiled case passes the oracle, including invariant 10's direct
/// per-(link, row) recount of copy link claims.
#[test]
fn mesh_presets_never_oversubscribe_links() {
    use clasp_loopgen::rng::Rng;
    use clasp_loopgen::{generate_stratum, Stratum};

    let opts = OracleOptions::default();
    for machine in [presets::mesh(3, 3), presets::torus(3, 3)] {
        let loops = generate_stratum(Stratum::CopyBound, 6, 0xFAB);
        for g in loops.iter().chain(std::iter::once(&dot_product())) {
            let violations = check_case(g, &machine, &oracle_pipeline, &opts);
            assert!(
                violations.is_empty(),
                "{} on {}: {violations:?}",
                g.name(),
                machine.name()
            );
        }
    }
    // A couple of random shapes for edge-case coverage beyond the stratum.
    let mut rng = Rng::seed_from_u64(0xFAB);
    let m = presets::mesh(3, 3);
    for _ in 0..4 {
        let mut g = Ddg::new("mesh-rand");
        let n = 6 + rng.below(6);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add(match i % 4 {
                    0 => OpKind::Load,
                    1 => OpKind::IntAlu,
                    2 => OpKind::FpAdd,
                    _ => OpKind::Store,
                })
            })
            .collect();
        for b in 1..n {
            let a = rng.below(b);
            g.add_dep(ids[a], ids[b]);
        }
        if g.validate().is_err() {
            continue;
        }
        let violations = check_case(&g, &m, &oracle_pipeline, &opts);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

/// The oracle's invariant 10 is a direct recount, so it must fire even
/// when handed a schedule the MRT never saw: compile on the mesh, then
/// retime one link-claiming copy onto another's kernel row on the same
/// link.
#[test]
fn link_collision_trips_the_occupancy_invariant() {
    use clasp_ddg::NodeId;
    use clasp_sched::Schedule;
    use std::collections::HashMap;

    let m = presets::mesh(3, 3);
    let g = dot_product();
    let collide = |g: &Ddg, m: &clasp_machine::MachineSpec| {
        let mut case = oracle_pipeline(g, m)?;
        // Pick any copy holding a link, then force a second copy onto the
        // same link and kernel row.
        let copies: Vec<(NodeId, clasp_machine::LinkId)> = case
            .assignment
            .map
            .copies()
            .filter_map(|(n, meta)| meta.link.map(|l| (n, l)))
            .collect();
        let Some(&(victim, link)) = copies.first() else {
            return Err("no link copies to collide".to_string());
        };
        let Some((other, _)) = copies.iter().find(|&&(n, _)| n != victim) else {
            return Err("need two link copies".to_string());
        };
        let other = *other;
        case.assignment.map.copy_meta_mut(other).unwrap().link = Some(link);
        let row = case.schedule.kernel_row(victim).unwrap();
        let mut time: HashMap<NodeId, i64> = case.schedule.iter().collect();
        time.insert(other, i64::from(row));
        case.schedule = Schedule::new(case.schedule.ii(), time);
        Ok(case)
    };
    let violations = check_case(&g, &m, &collide, &OracleOptions::default());
    assert!(
        violations.iter().any(|v| v.kind() == "link-over-capacity"),
        "a shared (link, row) slot must trip invariant 10: {violations:?}"
    );
}

/// The smear fault moves carried distance one segment up the chain
/// without changing total cycle distance — only the oracle's
/// carried-distance invariant can catch that.
#[test]
fn smear_fault_is_detected() {
    let (g, _, _) = line_carried_loop();
    let m = three_cluster_line();
    let opts = OracleOptions {
        fault: Fault::SmearDistance,
        ..OracleOptions::default()
    };
    let violations = check_case(&g, &m, &oracle_pipeline, &opts);
    assert!(
        violations
            .iter()
            .any(|v| v.kind() == "carried-distance-split"),
        "smeared distance must trip the carried-distance invariant: {violations:?}"
    );
}
