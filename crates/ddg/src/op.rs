//! Operation kinds, latencies (paper Table 2), and resource classes.

use std::fmt;

/// The kind of an operation in a loop body.
///
/// The set mirrors the operation repertoire of the paper's evaluation
/// (Table 2): simple integer operations, memory operations, floating-point
/// operations, and the explicit inter-cluster [`OpKind::Copy`].
///
/// # Examples
///
/// ```
/// use clasp_ddg::OpKind;
///
/// assert_eq!(OpKind::Load.latency(), 2);
/// assert_eq!(OpKind::FpMult.latency(), 3);
/// assert!(OpKind::Copy.is_copy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Integer arithmetic/logic (add, sub, compare, ...). Latency 1.
    IntAlu,
    /// Shift. Latency 1.
    Shift,
    /// Branch (the loop-back branch, IF-converted compares). Latency 1.
    Branch,
    /// Memory load. Latency 2.
    Load,
    /// Memory store. Latency 1.
    Store,
    /// Floating-point add/subtract. Latency 1.
    FpAdd,
    /// Floating-point multiply. Latency 3.
    FpMult,
    /// Floating-point divide. Latency 9.
    FpDiv,
    /// Floating-point square root. Latency 9.
    FpSqrt,
    /// Explicit inter-cluster copy. Latency 1; consumes interconnect
    /// resources (ports and a bus or link), not a function unit.
    Copy,
}

/// The function-unit class an operation executes on, for *fully specified*
/// (FS) machines. General-purpose (GP) units execute every class.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{FuClass, OpKind};
///
/// assert_eq!(OpKind::Load.fu_class(), Some(FuClass::Memory));
/// assert_eq!(OpKind::Copy.fu_class(), None); // copies use no FU
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Memory unit: loads and stores.
    Memory,
    /// Integer unit: ALU, shift, branch.
    Integer,
    /// Floating-point unit: FP add/mult/div/sqrt.
    Float,
}

impl FuClass {
    /// All function-unit classes, in a fixed order usable for indexing.
    pub const ALL: [FuClass; 3] = [FuClass::Memory, FuClass::Integer, FuClass::Float];

    /// A small dense index (0..3) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuClass::Memory => 0,
            FuClass::Integer => 1,
            FuClass::Float => 2,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Memory => "memory",
            FuClass::Integer => "integer",
            FuClass::Float => "float",
        };
        f.write_str(s)
    }
}

impl OpKind {
    /// All non-copy operation kinds.
    pub const REAL_OPS: [OpKind; 9] = [
        OpKind::IntAlu,
        OpKind::Shift,
        OpKind::Branch,
        OpKind::Load,
        OpKind::Store,
        OpKind::FpAdd,
        OpKind::FpMult,
        OpKind::FpDiv,
        OpKind::FpSqrt,
    ];

    /// Result latency in cycles, exactly the paper's Table 2.
    ///
    /// A consumer of this operation's value may issue no earlier than
    /// `issue(this) + latency()` cycles (minus `distance * II` for
    /// loop-carried uses).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpKind::IntAlu
            | OpKind::Shift
            | OpKind::Branch
            | OpKind::Store
            | OpKind::FpAdd
            | OpKind::Copy => 1,
            OpKind::Load => 2,
            OpKind::FpMult => 3,
            OpKind::FpDiv | OpKind::FpSqrt => 9,
        }
    }

    /// The FS function-unit class this operation executes on, or `None`
    /// for [`OpKind::Copy`], which occupies interconnect resources only.
    #[inline]
    pub fn fu_class(self) -> Option<FuClass> {
        match self {
            OpKind::Load | OpKind::Store => Some(FuClass::Memory),
            OpKind::IntAlu | OpKind::Shift | OpKind::Branch => Some(FuClass::Integer),
            OpKind::FpAdd | OpKind::FpMult | OpKind::FpDiv | OpKind::FpSqrt => Some(FuClass::Float),
            OpKind::Copy => None,
        }
    }

    /// Whether this is the explicit inter-cluster copy pseudo-operation.
    #[inline]
    pub fn is_copy(self) -> bool {
        matches!(self, OpKind::Copy)
    }

    /// Whether the operation produces a register result that downstream
    /// operations read. Stores and branches do not.
    #[inline]
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store | OpKind::Branch)
    }

    /// Short mnemonic used in dumps and graphviz output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::IntAlu => "alu",
            OpKind::Shift => "shl",
            OpKind::Branch => "br",
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::FpAdd => "fadd",
            OpKind::FpMult => "fmul",
            OpKind::FpDiv => "fdiv",
            OpKind::FpSqrt => "fsqrt",
            OpKind::Copy => "copy",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_latencies() {
        // Table 2 of the paper, verbatim.
        assert_eq!(OpKind::IntAlu.latency(), 1);
        assert_eq!(OpKind::Shift.latency(), 1);
        assert_eq!(OpKind::Branch.latency(), 1);
        assert_eq!(OpKind::Store.latency(), 1);
        assert_eq!(OpKind::FpAdd.latency(), 1);
        assert_eq!(OpKind::Copy.latency(), 1);
        assert_eq!(OpKind::Load.latency(), 2);
        assert_eq!(OpKind::FpMult.latency(), 3);
        assert_eq!(OpKind::FpDiv.latency(), 9);
        assert_eq!(OpKind::FpSqrt.latency(), 9);
    }

    #[test]
    fn fu_classes() {
        assert_eq!(OpKind::Load.fu_class(), Some(FuClass::Memory));
        assert_eq!(OpKind::Store.fu_class(), Some(FuClass::Memory));
        assert_eq!(OpKind::IntAlu.fu_class(), Some(FuClass::Integer));
        assert_eq!(OpKind::Shift.fu_class(), Some(FuClass::Integer));
        assert_eq!(OpKind::Branch.fu_class(), Some(FuClass::Integer));
        assert_eq!(OpKind::FpAdd.fu_class(), Some(FuClass::Float));
        assert_eq!(OpKind::FpSqrt.fu_class(), Some(FuClass::Float));
        assert_eq!(OpKind::Copy.fu_class(), None);
    }

    #[test]
    fn copy_is_special() {
        assert!(OpKind::Copy.is_copy());
        for k in OpKind::REAL_OPS {
            assert!(!k.is_copy());
        }
    }

    #[test]
    fn value_producers() {
        assert!(OpKind::Load.produces_value());
        assert!(OpKind::FpMult.produces_value());
        assert!(OpKind::Copy.produces_value());
        assert!(!OpKind::Store.produces_value());
        assert!(!OpKind::Branch.produces_value());
    }

    #[test]
    fn fu_class_indices_are_dense() {
        let mut seen = [false; 3];
        for c in FuClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(OpKind::Load.to_string(), "ld");
        assert_eq!(FuClass::Memory.to_string(), "memory");
        assert_eq!(format!("{:?}", OpKind::Copy), "Copy");
    }
}
