//! Strongly-connected-component analysis (Tarjan's algorithm).
//!
//! Recurrences in a modulo-scheduled loop correspond to SCCs of the
//! dependence graph (loop-carried edges included). A *non-trivial* SCC is
//! one that actually contains a dependence cycle: two or more nodes, or a
//! single node with a self edge.

use crate::graph::{Ddg, NodeId};

/// One strongly connected component: the member nodes in discovery order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// Nodes belonging to this component.
    pub nodes: Vec<NodeId>,
    /// Whether the component contains a cycle (size >= 2, or a self edge).
    pub non_trivial: bool,
}

impl Scc {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the component has no nodes (never produced by [`find_sccs`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The SCC decomposition of a [`Ddg`].
#[derive(Debug, Clone)]
pub struct SccInfo {
    /// All components in reverse topological discovery order.
    pub sccs: Vec<Scc>,
    /// For each node (by index), the index into `sccs` of its component.
    pub component_of: Vec<usize>,
}

impl SccInfo {
    /// The component index of a node.
    pub fn component(&self, n: NodeId) -> usize {
        self.component_of[n.index()]
    }

    /// Whether two nodes share a component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component(a) == self.component(b)
    }

    /// Whether `n` belongs to a non-trivial (cyclic) component.
    pub fn in_recurrence(&self, n: NodeId) -> bool {
        self.sccs[self.component(n)].non_trivial
    }

    /// Iterate over the non-trivial components.
    pub fn non_trivial(&self) -> impl Iterator<Item = (usize, &Scc)> + '_ {
        self.sccs.iter().enumerate().filter(|(_, s)| s.non_trivial)
    }

    /// Count of non-trivial components.
    pub fn non_trivial_count(&self) -> usize {
        self.non_trivial().count()
    }

    /// Total nodes across non-trivial components.
    pub fn nodes_in_recurrences(&self) -> usize {
        self.non_trivial().map(|(_, s)| s.len()).sum()
    }
}

/// Compute the SCC decomposition of `g` using an iterative Tarjan walk
/// (explicit stack, so deep graphs cannot overflow the call stack).
///
/// All edges participate regardless of dependence distance: loop-carried
/// edges are precisely what closes recurrence cycles.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind, find_sccs};
///
/// let mut g = Ddg::new("rec");
/// let a = g.add(OpKind::IntAlu);
/// let b = g.add(OpKind::IntAlu);
/// let c = g.add(OpKind::IntAlu);
/// g.add_dep(a, b);
/// g.add_dep_carried(b, a, 1); // a <-> b recurrence
/// g.add_dep(b, c);
/// let info = find_sccs(&g);
/// assert_eq!(info.non_trivial_count(), 1);
/// assert!(info.same_component(a, b));
/// assert!(!info.same_component(a, c));
/// ```
pub fn find_sccs(g: &Ddg) -> SccInfo {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index: u32 = 0;
    let mut sccs: Vec<Scc> = Vec::new();
    let mut component_of = vec![usize::MAX; n];

    // Precomputed adjacency so each frame step is O(1).
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            g.succ_edges(NodeId(v as u32))
                .map(|(_, e)| e.dst.index())
                .collect()
        })
        .collect();

    // Iterative DFS frames: (node, iterator position into succ list).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succs = &adj[v];
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component_of[w] = sccs.len();
                        comp.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    let non_trivial =
                        comp.len() > 1 || g.succ_edges(comp[0]).any(|(_, e)| e.dst == comp[0]);
                    sccs.push(Scc {
                        nodes: comp,
                        non_trivial,
                    });
                }
            }
        }
    }

    SccInfo { sccs, component_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn acyclic_graph_all_trivial() {
        let mut g = Ddg::new("dag");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        let info = find_sccs(&g);
        assert_eq!(info.sccs.len(), 3);
        assert_eq!(info.non_trivial_count(), 0);
        assert_eq!(info.nodes_in_recurrences(), 0);
    }

    #[test]
    fn self_loop_is_non_trivial() {
        let mut g = Ddg::new("self");
        let a = g.add(OpKind::FpAdd);
        g.add_dep_carried(a, a, 1);
        let info = find_sccs(&g);
        assert_eq!(info.non_trivial_count(), 1);
        assert!(info.in_recurrence(a));
    }

    #[test]
    fn paper_figure6_scc() {
        // B, C, D form the SCC of the introductory example.
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        let info = find_sccs(&g);
        assert_eq!(info.non_trivial_count(), 1);
        let (_, scc) = info.non_trivial().next().unwrap();
        let mut members = scc.nodes.clone();
        members.sort();
        assert_eq!(members, vec![b, c, d]);
        assert_eq!(info.nodes_in_recurrences(), 3);
        assert!(!info.in_recurrence(a));
        assert!(!info.in_recurrence(e));
        assert!(!info.in_recurrence(f));
    }

    #[test]
    fn two_separate_recurrences() {
        let mut g = Ddg::new("two");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::FpAdd);
        let d = g.add(OpKind::FpMult);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        g.add_dep(c, d);
        g.add_dep_carried(d, c, 2);
        g.add_dep(b, c); // connect, but one-directional
        let info = find_sccs(&g);
        assert_eq!(info.non_trivial_count(), 2);
        assert!(!info.same_component(a, c));
    }

    #[test]
    fn component_indices_cover_all_nodes() {
        let mut g = Ddg::new("cover");
        for _ in 0..10 {
            g.add(OpKind::IntAlu);
        }
        let info = find_sccs(&g);
        assert!(info.component_of.iter().all(|&c| c != usize::MAX));
        let total: usize = info.sccs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node chain exercises the iterative DFS.
        let mut g = Ddg::new("deep");
        let mut prev = g.add(OpKind::IntAlu);
        for _ in 0..100_000 {
            let n = g.add(OpKind::IntAlu);
            g.add_dep(prev, n);
            prev = n;
        }
        let info = find_sccs(&g);
        assert_eq!(info.sccs.len(), 100_001);
    }
}
