//! Minimum initiation interval bounds from recurrences.
//!
//! `RecMII` is the recurrence-constrained lower bound on II: the maximum
//! over all dependence cycles of `ceil(sum(latency) / sum(distance))`.
//! (The resource bound `ResMII` depends on a machine description and lives
//! in `clasp-machine`.)

use crate::graph::{Ddg, NodeId};
use crate::scc::{find_sccs, SccInfo};

/// Compute the recurrence-constrained MII of the whole graph.
///
/// Returns 1 for graphs without recurrences (every loop needs II >= 1).
///
/// # Examples
///
/// The paper's introductory example (Figure 6) has the critical cycle
/// `B -> C -> D -> B` with latencies 1 + 2 + 1 over distance 1, so
/// RecMII = 4:
///
/// ```
/// use clasp_ddg::{Ddg, OpKind, rec_mii};
///
/// let mut g = Ddg::new("fig6");
/// let b = g.add(OpKind::IntAlu);
/// let c = g.add(OpKind::Load); // latency 2
/// let d = g.add(OpKind::IntAlu);
/// g.add_dep(b, c);
/// g.add_dep(c, d);
/// g.add_dep_carried(d, b, 1);
/// assert_eq!(rec_mii(&g), 4);
/// ```
pub fn rec_mii(g: &Ddg) -> u32 {
    let sccs = find_sccs(g);
    rec_mii_with(g, &sccs)
}

/// As [`rec_mii`], reusing a precomputed SCC decomposition.
pub fn rec_mii_with(g: &Ddg, sccs: &SccInfo) -> u32 {
    sccs.non_trivial()
        .map(|(idx, _)| scc_rec_mii(g, sccs, idx))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The RecMII contributed by one (non-trivial) SCC: the maximum cycle
/// ratio `ceil(lat / dist)` over cycles inside that component.
///
/// Returns 0 for trivial components (they contain no cycle).
///
/// # Panics
///
/// Panics if `scc_index` is out of bounds for `sccs`.
pub fn scc_rec_mii(g: &Ddg, sccs: &SccInfo, scc_index: usize) -> u32 {
    let scc = &sccs.sccs[scc_index];
    if !scc.non_trivial {
        return 0;
    }
    // Local renumbering of the component's nodes.
    let mut local = vec![usize::MAX; g.node_count()];
    for (i, n) in scc.nodes.iter().enumerate() {
        local[n.index()] = i;
    }
    // Edges internal to the component.
    let mut edges: Vec<(usize, usize, i64, i64)> = Vec::new(); // (u, v, lat, dist)
    let mut lat_sum: i64 = 0;
    for &n in &scc.nodes {
        for (_, e) in g.succ_edges(n) {
            let li = local[e.dst.index()];
            if li != usize::MAX && sccs.component(e.dst) == scc_index {
                edges.push((
                    local[n.index()],
                    li,
                    i64::from(e.latency),
                    i64::from(e.distance),
                ));
                lat_sum += i64::from(e.latency);
            }
        }
    }
    // Smallest ii in [1, lat_sum] such that no cycle has lat > ii*dist.
    // Monotone in ii, so binary search with a positive-cycle oracle.
    let (mut lo, mut hi) = (1i64, lat_sum.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(scc.nodes.len(), &edges, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    u32::try_from(lo).expect("RecMII fits in u32")
}

/// Bellman-Ford positive-cycle test on weights `lat - ii * dist`.
fn has_positive_cycle(n: usize, edges: &[(usize, usize, i64, i64)], ii: i64) -> bool {
    // Longest-path relaxation from a virtual source connected to all nodes
    // with weight 0; a relaxation on pass n implies a positive cycle.
    let mut dist = vec![0i64; n];
    for pass in 0..n {
        let mut changed = false;
        for &(u, v, lat, d) in edges {
            let w = lat - ii * d;
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if pass == n - 1 {
            return true;
        }
    }
    false
}

/// Brute-force RecMII by enumerating all elementary cycles (Johnson-style
/// DFS). Exponential; only suitable for small graphs. Used to validate
/// [`rec_mii`] in tests.
pub fn rec_mii_bruteforce(g: &Ddg) -> u32 {
    let n = g.node_count();
    let mut best: u32 = 1;
    // DFS from each start node, only visiting nodes >= start to avoid
    // duplicate cycles.
    for start in 0..n {
        let mut on_path = vec![false; n];
        type Frame = (usize, Vec<(usize, u64, u64)>);
        let mut stack: Vec<Frame> = Vec::new();
        // state: (node, remaining successor list of (dst, lat, dist))
        let succs = |v: usize| -> Vec<(usize, u64, u64)> {
            g.succ_edges(NodeId(v as u32))
                .map(|(_, e)| (e.dst.index(), u64::from(e.latency), u64::from(e.distance)))
                .filter(|&(d, _, _)| d >= start)
                .collect()
        };
        let mut lat_path: Vec<u64> = vec![0];
        let mut dist_path: Vec<u64> = vec![0];
        stack.push((start, succs(start)));
        on_path[start] = true;
        while let Some((v, rest)) = stack.last_mut() {
            if let Some((w, lat, d)) = rest.pop() {
                let nl = lat_path.last().unwrap() + lat;
                let nd = dist_path.last().unwrap() + d;
                if w == start {
                    // Found a cycle back to start.
                    if nd > 0 {
                        let ratio = nl.div_ceil(nd);
                        best = best.max(u32::try_from(ratio).unwrap_or(u32::MAX));
                    }
                } else if !on_path[w] {
                    on_path[w] = true;
                    lat_path.push(nl);
                    dist_path.push(nd);
                    stack.push((w, succs(w)));
                }
            } else {
                on_path[*v] = false;
                stack.pop();
                lat_path.pop();
                dist_path.pop();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn no_recurrence_gives_one() {
        let mut g = Ddg::new("dag");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::FpMult);
        g.add_dep(a, b);
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn figure6_recmii_is_four() {
        let mut g = Ddg::new("fig6");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::Load);
        let d = g.add(OpKind::IntAlu);
        let e = g.add(OpKind::IntAlu);
        let f = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        assert_eq!(rec_mii(&g), 4);
        assert_eq!(rec_mii_bruteforce(&g), 4);
    }

    #[test]
    fn self_loop_ratio() {
        let mut g = Ddg::new("self");
        let a = g.add(OpKind::FpDiv); // latency 9
        g.add_dep_carried(a, a, 1);
        assert_eq!(rec_mii(&g), 9);
        let mut g2 = Ddg::new("self2");
        let b = g2.add(OpKind::FpDiv);
        g2.add_dep_carried(b, b, 3); // 9/3 = 3
        assert_eq!(rec_mii(&g2), 3);
    }

    #[test]
    fn fractional_ratio_rounds_up() {
        // Cycle latency 5 over distance 2 -> ceil(2.5) = 3.
        let mut g = Ddg::new("frac");
        let a = g.add(OpKind::FpMult); // lat 3
        let b = g.add(OpKind::Load); // lat 2
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 2);
        assert_eq!(rec_mii(&g), 3);
        assert_eq!(rec_mii_bruteforce(&g), 3);
    }

    #[test]
    fn max_over_multiple_sccs() {
        let mut g = Ddg::new("multi");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1); // ratio 2
        let c = g.add(OpKind::FpDiv);
        g.add_dep_carried(c, c, 1); // ratio 9
        assert_eq!(rec_mii(&g), 9);
    }

    #[test]
    fn nested_cycles_take_worst() {
        // Two cycles sharing nodes: a->b->a (lat 2, dist 1, ratio 2) and
        // a->b->c->a (lat 3, dist 1, ratio 3).
        let mut g = Ddg::new("nest");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        g.add_dep(b, c);
        g.add_dep_carried(c, a, 1);
        assert_eq!(rec_mii(&g), 3);
        assert_eq!(rec_mii_bruteforce(&g), 3);
    }

    #[test]
    fn per_scc_values() {
        let mut g = Ddg::new("per");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let c = g.add(OpKind::Load);
        g.add_dep_carried(c, c, 1);
        let sccs = find_sccs(&g);
        let mut vals: Vec<u32> = sccs
            .non_trivial()
            .map(|(i, _)| scc_rec_mii(&g, &sccs, i))
            .collect();
        vals.sort();
        assert_eq!(vals, vec![2, 2]);
    }

    #[test]
    fn bruteforce_matches_on_dense_small_graph() {
        // Small handmade graph with several interleaved cycles.
        let mut g = Ddg::new("dense");
        let n: Vec<_> = (0..5).map(|_| g.add(OpKind::IntAlu)).collect();
        g.add_dep(n[0], n[1]);
        g.add_dep(n[1], n[2]);
        g.add_dep(n[2], n[3]);
        g.add_dep(n[3], n[4]);
        g.add_dep_carried(n[4], n[0], 2);
        g.add_dep_carried(n[2], n[1], 1);
        g.add_dep_carried(n[3], n[0], 1);
        assert_eq!(rec_mii(&g), rec_mii_bruteforce(&g));
    }
}
