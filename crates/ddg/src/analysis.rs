//! Amortized per-loop analysis: everything the assignment and scheduling
//! phases derive from a dependence graph that does *not* depend on the
//! initiation interval, computed once and reused across every II attempt.
//!
//! The seed pipeline recomputed the SCC decomposition and the swing order
//! on every `assign`/`schedule` call — once per II escalation — and walked
//! edges through two levels of indirection (`Vec<Vec<EdgeId>>` then the
//! edge table). [`LoopAnalysis`] hoists all of that: one Tarjan pass, one
//! swing ordering, one priority (position-in-order) array, and the
//! predecessor/successor adjacency packed in CSR form so the scheduler's
//! hot loops stream contiguous memory.
//!
//! # Invalidation
//!
//! A `LoopAnalysis` is a pure function of the graph it was computed from.
//! It holds no reference to the graph, so nothing enforces freshness: any
//! mutation of the graph (adding nodes, edges, or copies) invalidates the
//! analysis, and the caller must recompute it. In the pipeline this is the
//! boundary between the *source* graph (fixed for the whole compilation)
//! and each *working* graph (fresh per assignment, analysed once each).

use crate::graph::{Ddg, NodeId};
use crate::mii::rec_mii_with;
use crate::order::swing_order_with;
use crate::scc::{find_sccs, SccInfo};

/// One packed adjacency entry: the far endpoint of an edge plus the edge
/// weights the schedulers read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEdge {
    /// The other endpoint (the producer in a predecessor list, the
    /// consumer in a successor list).
    pub other: NodeId,
    /// Dependence latency in cycles.
    pub latency: u32,
    /// Loop-carried distance in iterations.
    pub distance: u32,
}

/// II-independent analysis of one loop graph, computed once per loop and
/// shared by cluster assignment and modulo scheduling.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, LoopAnalysis, OpKind};
///
/// let mut g = Ddg::new("pair");
/// let a = g.add(OpKind::Load);
/// let b = g.add(OpKind::FpAdd);
/// g.add_dep(a, b);
/// let la = LoopAnalysis::compute(&g);
/// assert_eq!(la.order().len(), 2);
/// assert_eq!(la.preds(b)[0].other, a);
/// assert_eq!(la.position(la.order()[0]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    node_count: usize,
    sccs: SccInfo,
    rec_mii: u32,
    order: Vec<NodeId>,
    position: Vec<usize>,
    pred_off: Vec<u32>,
    pred_adj: Vec<AdjEdge>,
    succ_off: Vec<u32>,
    succ_adj: Vec<AdjEdge>,
}

impl LoopAnalysis {
    /// Run every II-independent analysis of `g`: SCCs, RecMII, the §4.1
    /// swing order, its inverse (the priority array), and CSR-packed
    /// adjacency.
    pub fn compute(g: &Ddg) -> Self {
        let n = g.node_count();
        let sccs = find_sccs(g);
        let rec_mii = rec_mii_with(g, &sccs);
        let order = swing_order_with(g, &sccs);
        let mut position = vec![usize::MAX; n];
        for (pos, &node) in order.iter().enumerate() {
            position[node.index()] = pos;
        }

        let e = g.edge_count();
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut pred_adj = Vec::with_capacity(e);
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_adj = Vec::with_capacity(e);
        pred_off.push(0);
        succ_off.push(0);
        for v in g.node_ids() {
            for (_, edge) in g.pred_edges(v) {
                pred_adj.push(AdjEdge {
                    other: edge.src,
                    latency: edge.latency,
                    distance: edge.distance,
                });
            }
            pred_off.push(pred_adj.len() as u32);
            for (_, edge) in g.succ_edges(v) {
                succ_adj.push(AdjEdge {
                    other: edge.dst,
                    latency: edge.latency,
                    distance: edge.distance,
                });
            }
            succ_off.push(succ_adj.len() as u32);
        }

        LoopAnalysis {
            node_count: n,
            sccs,
            rec_mii,
            order,
            position,
            pred_off,
            pred_adj,
            succ_off,
            succ_adj,
        }
    }

    /// Number of nodes in the analysed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The SCC decomposition.
    pub fn sccs(&self) -> &SccInfo {
        &self.sccs
    }

    /// The recurrence-constrained MII.
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// The full §4.1 assignment/scheduling order (every node once).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `n` in [`LoopAnalysis::order`] (the scheduling
    /// priority: lower is more urgent).
    pub fn position(&self, n: NodeId) -> usize {
        self.position[n.index()]
    }

    /// Incoming edges of `n`, packed contiguously (same multiset as
    /// [`Ddg::pred_edges`], in the same order).
    pub fn preds(&self, n: NodeId) -> &[AdjEdge] {
        let i = n.index();
        &self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Outgoing edges of `n`, packed contiguously (same multiset as
    /// [`Ddg::succ_edges`], in the same order).
    pub fn succs(&self, n: NodeId) -> &[AdjEdge] {
        let i = n.index();
        &self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::order::swing_order;

    fn fig6() -> Ddg {
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        g
    }

    #[test]
    fn order_matches_standalone_swing_order() {
        let g = fig6();
        let la = LoopAnalysis::compute(&g);
        assert_eq!(la.order(), swing_order(&g).as_slice());
    }

    #[test]
    fn position_is_inverse_of_order() {
        let g = fig6();
        let la = LoopAnalysis::compute(&g);
        for (pos, &v) in la.order().iter().enumerate() {
            assert_eq!(la.position(v), pos);
        }
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let g = fig6();
        let la = LoopAnalysis::compute(&g);
        for v in g.node_ids() {
            let preds: Vec<AdjEdge> = g
                .pred_edges(v)
                .map(|(_, e)| AdjEdge {
                    other: e.src,
                    latency: e.latency,
                    distance: e.distance,
                })
                .collect();
            assert_eq!(la.preds(v), preds.as_slice());
            let succs: Vec<AdjEdge> = g
                .succ_edges(v)
                .map(|(_, e)| AdjEdge {
                    other: e.dst,
                    latency: e.latency,
                    distance: e.distance,
                })
                .collect();
            assert_eq!(la.succs(v), succs.as_slice());
        }
    }

    #[test]
    fn recmii_and_sccs_cached() {
        let g = fig6();
        let la = LoopAnalysis::compute(&g);
        assert_eq!(la.rec_mii(), crate::mii::rec_mii(&g));
        assert_eq!(la.sccs().non_trivial_count(), 1);
        assert_eq!(la.node_count(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Ddg::new("empty");
        let la = LoopAnalysis::compute(&g);
        assert_eq!(la.node_count(), 0);
        assert!(la.order().is_empty());
    }
}
