//! Node ordering for assignment and scheduling priority (paper §4.1).
//!
//! The ordering has two levels:
//!
//! 1. **Set formation**: nodes are partitioned into priority sets — one set
//!    per non-trivial SCC, sorted by decreasing per-SCC RecMII (the most
//!    constraining recurrence first), followed by one final set holding
//!    every node outside any recurrence.
//! 2. **Within-set ordering**: the Swing Modulo Scheduler's ordering
//!    heuristic (Llosa et al., PACT 1996), which lists a node only after
//!    all of its predecessors *or* all of its successors whenever possible,
//!    by alternating top-down and bottom-up sweeps along the critical path.

use crate::graph::{Ddg, NodeId};
use crate::mii::{rec_mii_with, scc_rec_mii};
use crate::scc::{find_sccs, SccInfo};

/// Longest-path depths and heights of every node at a given II.
///
/// `depth(v)` is the longest effective-latency path from any source to `v`;
/// `height(v)` the longest path from `v` to any sink. Effective latency of
/// an edge is `latency - ii * distance` (never allowed to push values below
/// zero at sources/sinks).
#[derive(Debug, Clone)]
pub struct DepthHeight {
    /// Per node (indexed by `NodeId::index`): longest path from a source.
    pub depth: Vec<i64>,
    /// Per node: longest path to a sink.
    pub height: Vec<i64>,
}

/// Compute [`DepthHeight`] at initiation interval `ii`.
///
/// Uses Bellman-Ford style relaxation; requires that the graph has no
/// positive cycle at `ii` (i.e. `ii >= RecMII`), which holds for any
/// validated loop at its MII.
pub fn depth_height(g: &Ddg, ii: u32) -> DepthHeight {
    let n = g.node_count();
    let mut depth = vec![0i64; n];
    let mut height = vec![0i64; n];
    let edges: Vec<(usize, usize, i64)> = g
        .edges()
        .map(|(_, e)| {
            (
                e.src.index(),
                e.dst.index(),
                i64::from(e.latency) - i64::from(ii) * i64::from(e.distance),
            )
        })
        .collect();
    for _ in 0..n {
        let mut changed = false;
        for &(u, v, w) in &edges {
            if depth[u] + w > depth[v] {
                depth[v] = depth[u] + w;
                changed = true;
            }
            if height[v] + w > height[u] {
                height[u] = height[v] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    DepthHeight { depth, height }
}

/// The priority sets of §4.1: each non-trivial SCC (most constraining
/// first, by per-SCC RecMII, ties broken towards larger components), then
/// a final set with all remaining nodes.
///
/// Empty sets are never produced; a graph with no recurrences yields a
/// single set with every node.
pub fn priority_sets(g: &Ddg, sccs: &SccInfo) -> Vec<Vec<NodeId>> {
    let mut scc_sets: Vec<(u32, usize, Vec<NodeId>)> = sccs
        .non_trivial()
        .map(|(idx, scc)| (scc_rec_mii(g, sccs, idx), scc.len(), scc.nodes.clone()))
        .collect();
    // Decreasing RecMII, then decreasing size, then first-node id for
    // determinism.
    scc_sets.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2[0].cmp(&b.2[0])));
    let mut out: Vec<Vec<NodeId>> = scc_sets.into_iter().map(|(_, _, s)| s).collect();
    let rest: Vec<NodeId> = g.node_ids().filter(|&n| !sccs.in_recurrence(n)).collect();
    if !rest.is_empty() {
        out.push(rest);
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    TopDown,
    BottomUp,
}

/// Compute the full assignment/scheduling order of §4.1: priority sets in
/// order, each internally ordered by the swing heuristic.
///
/// The returned list contains every node exactly once.
///
/// # Examples
///
/// ```
/// use clasp_ddg::{Ddg, OpKind, swing_order};
///
/// // Figure 6 of the paper: SCC {B, C, D} must come first.
/// let mut g = Ddg::new("fig6");
/// let a = g.add_named(OpKind::IntAlu, "A");
/// let b = g.add_named(OpKind::IntAlu, "B");
/// let c = g.add_named(OpKind::Load, "C");
/// let d = g.add_named(OpKind::IntAlu, "D");
/// let e = g.add_named(OpKind::IntAlu, "E");
/// let f = g.add_named(OpKind::IntAlu, "F");
/// g.add_dep(a, b);
/// g.add_dep(b, c);
/// g.add_dep(c, d);
/// g.add_dep(d, e);
/// g.add_dep(e, f);
/// g.add_dep_carried(d, b, 1);
/// let order = swing_order(&g);
/// let first_three: Vec<_> = order[..3].to_vec();
/// assert!(first_three.contains(&b));
/// assert!(first_three.contains(&c));
/// assert!(first_three.contains(&d));
/// ```
pub fn swing_order(g: &Ddg) -> Vec<NodeId> {
    let sccs = find_sccs(g);
    swing_order_with(g, &sccs)
}

/// Swing ordering *without* the SCC-first set formation: the whole graph
/// is treated as one set. Used by the ordering ablation to isolate the
/// benefit of assigning critical recurrences first (§4.1).
pub fn swing_order_flat(g: &Ddg) -> Vec<NodeId> {
    let sccs = find_sccs(g);
    let mii = rec_mii_with(g, &sccs);
    let dh = depth_height(g, mii);
    let all: Vec<NodeId> = g.node_ids().collect();
    let mut ordered = vec![false; g.node_count()];
    let mut order = Vec::with_capacity(g.node_count());
    order_one_set(g, &dh, &all, &mut ordered, &mut order);
    order
}

/// The §3 strawman ordering: plain bottom-up over intra-iteration edges —
/// a node is listed before its (distance-0) predecessors, sinks first.
pub fn bottom_up_order(g: &Ddg) -> Vec<NodeId> {
    // Reverse topological order over distance-0 edges (Kahn on the
    // reversed graph); loop-carried edges are ignored, like the example in
    // §3.1 (F, E, D, C, B, A for Figure 6).
    let n = g.node_count();
    let mut outdeg = vec![0usize; n];
    for (_, e) in g.edges() {
        if e.distance == 0 {
            outdeg[e.src.index()] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(NodeId(i as u32));
        for (_, e) in g.pred_edges(NodeId(i as u32)) {
            if e.distance == 0 {
                outdeg[e.src.index()] -= 1;
                if outdeg[e.src.index()] == 0 {
                    queue.push_back(e.src.index());
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n, "graph validated acyclic over d0 edges");
    order
}

/// As [`swing_order`], reusing a precomputed SCC decomposition.
pub fn swing_order_with(g: &Ddg, sccs: &SccInfo) -> Vec<NodeId> {
    let mii = rec_mii_with(g, sccs);
    let dh = depth_height(g, mii);
    let sets = priority_sets(g, sccs);
    let n = g.node_count();
    let mut ordered = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);

    for set in sets {
        order_one_set(g, &dh, &set, &mut ordered, &mut order);
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Swing-order the nodes of `set` given the already ordered context,
/// appending to `order` and marking `ordered`.
fn order_one_set(
    g: &Ddg,
    dh: &DepthHeight,
    set: &[NodeId],
    ordered: &mut [bool],
    order: &mut Vec<NodeId>,
) {
    let mut in_set = vec![false; g.node_count()];
    for &v in set {
        in_set[v.index()] = true;
    }
    let mut remaining: usize = set.iter().filter(|v| !ordered[v.index()]).count();
    if remaining == 0 {
        return;
    }

    // Initial frontier: nodes of the set adjacent to already-ordered nodes.
    let preds_of_ordered: Vec<NodeId> = set
        .iter()
        .copied()
        .filter(|&v| !ordered[v.index()] && g.successors(v).any(|s| ordered[s.index()]))
        .collect();
    let succs_of_ordered: Vec<NodeId> = set
        .iter()
        .copied()
        .filter(|&v| !ordered[v.index()] && g.predecessors(v).any(|p| ordered[p.index()]))
        .collect();

    let (mut frontier, mut dir) = if !succs_of_ordered.is_empty() {
        (succs_of_ordered, Direction::TopDown)
    } else if !preds_of_ordered.is_empty() {
        (preds_of_ordered, Direction::BottomUp)
    } else {
        // Fresh start: begin top-down from the most critical node (highest
        // height; ties lowest id for determinism).
        let start = set
            .iter()
            .copied()
            .filter(|&v| !ordered[v.index()])
            .max_by(|&a, &b| {
                dh.height[a.index()]
                    .cmp(&dh.height[b.index()])
                    .then(b.cmp(&a))
            })
            .expect("non-empty set");
        (vec![start], Direction::TopDown)
    };

    while remaining > 0 {
        frontier.retain(|&v| !ordered[v.index()]);
        if frontier.is_empty() {
            // Swing: flip direction, new frontier = unordered neighbours of
            // ordered nodes in the opposite sense; if still empty, restart
            // from the most critical unordered node.
            dir = match dir {
                Direction::TopDown => Direction::BottomUp,
                Direction::BottomUp => Direction::TopDown,
            };
            frontier = set
                .iter()
                .copied()
                .filter(|&v| !ordered[v.index()])
                .filter(|&v| match dir {
                    Direction::TopDown => g.predecessors(v).any(|p| ordered[p.index()]),
                    Direction::BottomUp => g.successors(v).any(|s| ordered[s.index()]),
                })
                .collect();
            if frontier.is_empty() {
                let start = set
                    .iter()
                    .copied()
                    .filter(|&v| !ordered[v.index()])
                    .max_by(|&a, &b| {
                        dh.height[a.index()]
                            .cmp(&dh.height[b.index()])
                            .then(b.cmp(&a))
                    })
                    .expect("remaining > 0");
                frontier = vec![start];
                dir = Direction::TopDown;
            }
            continue;
        }

        // Pick the most critical frontier node for the current direction.
        let pick = match dir {
            Direction::TopDown => frontier
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    dh.height[a.index()]
                        .cmp(&dh.height[b.index()])
                        .then(dh.depth[a.index()].cmp(&dh.depth[b.index()]))
                        .then(b.cmp(&a))
                })
                .expect("non-empty frontier"),
            Direction::BottomUp => frontier
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    dh.depth[a.index()]
                        .cmp(&dh.depth[b.index()])
                        .then(dh.height[a.index()].cmp(&dh.height[b.index()]))
                        .then(b.cmp(&a))
                })
                .expect("non-empty frontier"),
        };

        ordered[pick.index()] = true;
        order.push(pick);
        remaining -= 1;
        frontier.retain(|&v| v != pick);

        // Extend the frontier in the sweep direction, staying inside the set.
        let extend: Vec<NodeId> = match dir {
            Direction::TopDown => g.successors(pick).collect(),
            Direction::BottomUp => g.predecessors(pick).collect(),
        };
        for v in extend {
            if in_set[v.index()] && !ordered[v.index()] && !frontier.contains(&v) {
                frontier.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn fig6() -> (Ddg, [NodeId; 6]) {
        let mut g = Ddg::new("fig6");
        let a = g.add_named(OpKind::IntAlu, "A");
        let b = g.add_named(OpKind::IntAlu, "B");
        let c = g.add_named(OpKind::Load, "C");
        let d = g.add_named(OpKind::IntAlu, "D");
        let e = g.add_named(OpKind::IntAlu, "E");
        let f = g.add_named(OpKind::IntAlu, "F");
        g.add_dep(a, b);
        g.add_dep(b, c);
        g.add_dep(c, d);
        g.add_dep(d, e);
        g.add_dep(e, f);
        g.add_dep_carried(d, b, 1);
        (g, [a, b, c, d, e, f])
    }

    #[test]
    fn order_is_a_permutation() {
        let (g, _) = fig6();
        let mut order = swing_order(&g);
        assert_eq!(order.len(), g.node_count());
        order.sort();
        order.dedup();
        assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn scc_nodes_come_first() {
        let (g, [_, b, c, d, ..]) = fig6();
        let order = swing_order(&g);
        let first: Vec<_> = order[..3].to_vec();
        for n in [b, c, d] {
            assert!(first.contains(&n), "{n} should be in the first three");
        }
    }

    #[test]
    fn priority_sets_sorted_by_recmii() {
        // Two SCCs: one with RecMII 9 (FpDiv self-loop), one with RecMII 2.
        let mut g = Ddg::new("two");
        let slow = g.add(OpKind::FpDiv);
        g.add_dep_carried(slow, slow, 1);
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 1);
        let free = g.add(OpKind::Store);
        let sccs = find_sccs(&g);
        let sets = priority_sets(&g, &sccs);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0], vec![slow]);
        assert_eq!(sets[1].len(), 2);
        assert_eq!(sets[2], vec![free]);
    }

    #[test]
    fn listed_after_all_preds_or_all_succs_on_dag() {
        // On a pure DAG the swing property must hold exactly.
        let mut g = Ddg::new("dag");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::IntAlu);
        let d = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        let order = swing_order(&g);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.node_ids() {
            let preds: Vec<_> = g.predecessors(n).collect();
            let succs: Vec<_> = g.successors(n).collect();
            let after_preds = preds.iter().all(|p| pos[p] < pos[&n]);
            let after_succs = succs.iter().all(|s| pos[s] < pos[&n]);
            assert!(
                after_preds || after_succs || (preds.is_empty() && succs.is_empty()),
                "node {n} ordered before all preds and all succs"
            );
        }
    }

    #[test]
    fn depth_height_simple_chain() {
        let mut g = Ddg::new("chain");
        let a = g.add(OpKind::Load); // lat 2
        let b = g.add(OpKind::FpMult); // lat 3
        let c = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(b, c);
        let dh = depth_height(&g, 1);
        assert_eq!(dh.depth[a.index()], 0);
        assert_eq!(dh.depth[b.index()], 2);
        assert_eq!(dh.depth[c.index()], 5);
        assert_eq!(dh.height[a.index()], 5);
        assert_eq!(dh.height[b.index()], 3);
        assert_eq!(dh.height[c.index()], 0);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let mut g = Ddg::new("disc");
        let mut ids = Vec::new();
        for _ in 0..4 {
            let a = g.add(OpKind::IntAlu);
            let b = g.add(OpKind::IntAlu);
            g.add_dep(a, b);
            ids.push((a, b));
        }
        let order = swing_order(&g);
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn single_node_graph() {
        let mut g = Ddg::new("one");
        let a = g.add(OpKind::Branch);
        assert_eq!(swing_order(&g), vec![a]);
    }
}
