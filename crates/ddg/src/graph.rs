//! The data-dependence graph (DDG) of a loop body.
//!
//! Nodes are operations; edges are data-flow dependences annotated with a
//! latency (defaulting to the producer's result latency) and a *dependence
//! distance*: the number of loop iterations the dependence spans (0 for an
//! intra-iteration dependence, >= 1 for a loop-carried recurrence edge).

use crate::op::OpKind;
use std::fmt;

/// Identifier of a node (operation) in a [`Ddg`].
///
/// Node ids are dense indices assigned in insertion order, so they can be
/// used directly to index side tables of length [`Ddg::node_count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge (dependence) in a [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An operation node in the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// What the operation does (and hence its latency and FU class).
    pub kind: OpKind,
    /// An optional human-readable name used in dumps (`"A"`, `"x[i]"`, ...).
    pub name: Option<String>,
}

impl Operation {
    /// Create an unnamed operation of the given kind.
    pub fn new(kind: OpKind) -> Self {
        Operation { kind, name: None }
    }

    /// Create a named operation.
    pub fn named(kind: OpKind, name: impl Into<String>) -> Self {
        Operation {
            kind,
            name: Some(name.into()),
        }
    }

    /// The display label: the name if present, else the mnemonic.
    pub fn label(&self) -> &str {
        self.name.as_deref().unwrap_or_else(|| self.kind.mnemonic())
    }
}

/// A data dependence `src -> dst`.
///
/// Scheduling constraint: `t(dst) >= t(src) + latency - distance * II`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer operation.
    pub src: NodeId,
    /// Consumer operation.
    pub dst: NodeId,
    /// Dependence latency in cycles. For a data edge this is the result
    /// latency of `src`; anti/output dependences may use smaller values.
    pub latency: u32,
    /// Loop-iteration distance: 0 = same iteration, k >= 1 means `dst` of
    /// iteration `i + k` consumes the value `src` produces in iteration `i`.
    pub distance: u32,
}

/// A loop-body data-dependence graph.
///
/// # Examples
///
/// Build the introductory example of the paper (Figure 6): six unit-latency
/// operations (C has latency 2 via `FpMult`-style override) with a
/// loop-carried edge `D -> B`:
///
/// ```
/// use clasp_ddg::{Ddg, OpKind};
///
/// let mut g = Ddg::new("intro");
/// let a = g.add_named(OpKind::IntAlu, "A");
/// let b = g.add_named(OpKind::IntAlu, "B");
/// let c = g.add_named(OpKind::Load, "C"); // latency 2
/// let d = g.add_named(OpKind::IntAlu, "D");
/// let e = g.add_named(OpKind::IntAlu, "E");
/// let f = g.add_named(OpKind::IntAlu, "F");
/// g.add_dep(a, b);
/// g.add_dep(b, c);
/// g.add_dep(c, d);
/// g.add_dep(d, e);
/// g.add_dep(e, f);
/// g.add_dep_carried(d, b, 1); // recurrence with distance 1
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(g.edge_count(), 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ddg {
    name: String,
    nodes: Vec<Operation>,
    edges: Vec<DepEdge>,
    /// Outgoing edge ids per node, rebuilt incrementally.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    pred: Vec<Vec<EdgeId>>,
}

impl Ddg {
    /// Create an empty graph with a display name (e.g. the loop's origin).
    pub fn new(name: impl Into<String>) -> Self {
        Ddg {
            name: name.into(),
            ..Ddg::default()
        }
    }

    /// The graph's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependences.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an unnamed operation, returning its id.
    pub fn add(&mut self, kind: OpKind) -> NodeId {
        self.add_op(Operation::new(kind))
    }

    /// Add a named operation, returning its id.
    pub fn add_named(&mut self, kind: OpKind, name: impl Into<String>) -> NodeId {
        self.add_op(Operation::named(kind, name))
    }

    /// Add a pre-built operation, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the graph already holds `u32::MAX` nodes.
    pub fn add_op(&mut self, op: Operation) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count overflow"));
        self.nodes.push(op);
        // After `reset` the adjacency vectors keep cleared slots around;
        // only grow them once the recycled capacity is used up.
        if self.succ.len() < self.nodes.len() {
            self.succ.push(Vec::new());
            self.pred.push(Vec::new());
        }
        id
    }

    /// Empty the graph and rename it, retaining every buffer — including
    /// each node's adjacency vector — so a recycled graph is refilled
    /// without touching the allocator. Trailing adjacency slots beyond the
    /// refilled node count are harmless: all indexing is bounded by live
    /// node ids.
    pub fn reset(&mut self, name: impl Into<String>) {
        self.name = name.into();
        self.nodes.clear();
        self.edges.clear();
        for v in &mut self.succ {
            v.clear();
        }
        for v in &mut self.pred {
            v.clear();
        }
    }

    /// Add an intra-iteration data dependence with the producer's result
    /// latency.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        let lat = self.op(src).kind.latency();
        self.add_edge(DepEdge {
            src,
            dst,
            latency: lat,
            distance: 0,
        })
    }

    /// Add a loop-carried data dependence of the given distance with the
    /// producer's result latency.
    pub fn add_dep_carried(&mut self, src: NodeId, dst: NodeId, distance: u32) -> EdgeId {
        let lat = self.op(src).kind.latency();
        self.add_edge(DepEdge {
            src,
            dst,
            latency: lat,
            distance,
        })
    }

    /// Add an arbitrary dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, e: DepEdge) -> EdgeId {
        assert!(e.src.index() < self.nodes.len(), "src out of bounds");
        assert!(e.dst.index() < self.nodes.len(), "dst out of bounds");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count overflow"));
        self.succ[e.src.index()].push(id);
        self.pred[e.dst.index()].push(id);
        self.edges.push(e);
        id
    }

    /// The operation for a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn op(&self, id: NodeId) -> &Operation {
        &self.nodes[id.index()]
    }

    /// The edge for an edge id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &DepEdge {
        &self.edges[id.index()]
    }

    /// Iterate over `(NodeId, &Operation)` in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Operation)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, op)| (NodeId(i as u32), op))
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over `(EdgeId, &DepEdge)` in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &DepEdge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Outgoing edges of `n`.
    pub fn succ_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &DepEdge)> + '_ {
        self.succ[n.index()].iter().map(|&id| (id, self.edge(id)))
    }

    /// Incoming edges of `n`.
    pub fn pred_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &DepEdge)> + '_ {
        self.pred[n.index()].iter().map(|&id| (id, self.edge(id)))
    }

    /// Successor node ids of `n` (with multiplicity, in edge order).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ_edges(n).map(|(_, e)| e.dst)
    }

    /// Predecessor node ids of `n` (with multiplicity, in edge order).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred_edges(n).map(|(_, e)| e.src)
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.pred[n.index()].len()
    }

    /// Count operations per [`OpKind`], indexed by position in a caller
    /// supplied closure; convenience for ResMII computations.
    pub fn count_ops<F: FnMut(OpKind)>(&self, mut f: F) {
        for op in &self.nodes {
            f(op.kind);
        }
    }

    /// Render the graph in Graphviz DOT format (loop-carried edges dashed,
    /// labelled with `latency[,distance]`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        for (id, op) in self.nodes() {
            let _ = writeln!(
                s,
                "  {} [label=\"{} ({})\"];",
                id,
                op.label(),
                op.kind.mnemonic()
            );
        }
        for (_, e) in self.edges() {
            if e.distance == 0 {
                let _ = writeln!(s, "  {} -> {} [label=\"{}\"];", e.src, e.dst, e.latency);
            } else {
                let _ = writeln!(
                    s,
                    "  {} -> {} [label=\"{},d{}\" style=dashed];",
                    e.src, e.dst, e.latency, e.distance
                );
            }
        }
        s.push_str("}\n");
        s
    }

    /// Structural validation: every edge endpoint in bounds, adjacency
    /// lists consistent with the edge table, and intra-iteration edges
    /// acyclic (any cycle must carry distance >= 1, otherwise the loop
    /// body is not executable).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (id, e) in self.edges() {
            if e.src.index() >= self.node_count() || e.dst.index() >= self.node_count() {
                return Err(GraphError::DanglingEdge(id));
            }
        }
        // Kahn's algorithm over distance-0 edges only.
        let n = self.node_count();
        let mut indeg = vec![0usize; n];
        for (_, e) in self.edges() {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = stack.pop() {
            seen += 1;
            for (_, e) in self.succ_edges(NodeId(i as u32)) {
                if e.distance == 0 {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        stack.push(e.dst.index());
                    }
                }
            }
        }
        if seen != n {
            return Err(GraphError::IntraIterationCycle);
        }
        Ok(())
    }
}

/// Errors produced by [`Ddg::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node id that does not exist.
    DanglingEdge(EdgeId),
    /// A dependence cycle with total distance 0 exists; such a loop body
    /// cannot execute.
    IntraIterationCycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingEdge(e) => write!(f, "edge {e} references a missing node"),
            GraphError::IntraIterationCycle => {
                write!(f, "dependence cycle with zero total distance")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Ddg, [NodeId; 4]) {
        let mut g = Ddg::new("diamond");
        let a = g.add(OpKind::Load);
        let b = g.add(OpKind::IntAlu);
        let c = g.add(OpKind::FpAdd);
        let d = g.add(OpKind::Store);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn default_latency_is_producer_latency() {
        let (g, [a, ..]) = diamond();
        for (_, e) in g.succ_edges(a) {
            assert_eq!(e.latency, OpKind::Load.latency());
        }
    }

    #[test]
    fn carried_edges_have_distance() {
        let mut g = Ddg::new("rec");
        let x = g.add(OpKind::FpAdd);
        let e = g.add_dep_carried(x, x, 1);
        assert_eq!(g.edge(e).distance, 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn intra_iteration_cycle_is_invalid() {
        let mut g = Ddg::new("bad");
        let a = g.add(OpKind::IntAlu);
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep(b, a);
        assert_eq!(g.validate(), Err(GraphError::IntraIterationCycle));
    }

    #[test]
    fn named_nodes_label() {
        let mut g = Ddg::new("n");
        let a = g.add_named(OpKind::Load, "x[i]");
        let b = g.add(OpKind::Store);
        assert_eq!(g.op(a).label(), "x[i]");
        assert_eq!(g.op(b).label(), "st");
    }

    #[test]
    fn dot_output_mentions_nodes_and_dashed_carried_edges() {
        let mut g = Ddg::new("dot");
        let a = g.add_named(OpKind::Load, "A");
        let b = g.add(OpKind::IntAlu);
        g.add_dep(a, b);
        g.add_dep_carried(b, a, 2);
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("A (ld)"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("d2"));
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_to_missing_node_panics() {
        let mut g = Ddg::new("x");
        let a = g.add(OpKind::IntAlu);
        g.add_edge(DepEdge {
            src: a,
            dst: NodeId(99),
            latency: 1,
            distance: 0,
        });
    }

    #[test]
    fn self_loop_with_distance_zero_detected() {
        let mut g = Ddg::new("self");
        let a = g.add(OpKind::IntAlu);
        g.add_edge(DepEdge {
            src: a,
            dst: a,
            latency: 1,
            distance: 0,
        });
        assert_eq!(g.validate(), Err(GraphError::IntraIterationCycle));
    }
}
