//! # clasp-ddg — loop data-dependence graphs
//!
//! The graph substrate of the CLASP workspace, a reproduction of Nystrom &
//! Eichenberger, *"Effective Cluster Assignment for Modulo Scheduling"*
//! (MICRO 1998).
//!
//! This crate provides:
//!
//! - [`OpKind`] / [`FuClass`]: typed operations with the paper's Table 2
//!   latencies and function-unit classes;
//! - [`Ddg`]: the loop-body data-dependence graph with loop-carried
//!   dependence distances;
//! - [`find_sccs`]: recurrence (strongly-connected-component) analysis;
//! - [`rec_mii`]: the recurrence-constrained minimum initiation interval;
//! - [`swing_order`]: the SMS node-ordering heuristic used by both the
//!   cluster assigner and the modulo scheduler.
//!
//! # Examples
//!
//! Build the paper's introductory example and compute its RecMII:
//!
//! ```
//! use clasp_ddg::{Ddg, OpKind, rec_mii};
//!
//! let mut g = Ddg::new("intro");
//! let b = g.add_named(OpKind::IntAlu, "B");
//! let c = g.add_named(OpKind::Load, "C"); // latency 2
//! let d = g.add_named(OpKind::IntAlu, "D");
//! g.add_dep(b, c);
//! g.add_dep(c, d);
//! g.add_dep_carried(d, b, 1);
//! assert_eq!(rec_mii(&g), 4); // (1 + 2 + 1) / 1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod graph;
mod mii;
mod op;
mod order;
mod scc;

pub use analysis::{AdjEdge, LoopAnalysis};
pub use graph::{Ddg, DepEdge, EdgeId, GraphError, NodeId, Operation};
pub use mii::{rec_mii, rec_mii_bruteforce, rec_mii_with, scc_rec_mii};
pub use op::{FuClass, OpKind};
pub use order::{
    bottom_up_order, depth_height, priority_sets, swing_order, swing_order_flat, swing_order_with,
    DepthHeight,
};
pub use scc::{find_sccs, Scc, SccInfo};
