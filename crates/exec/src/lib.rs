//! # clasp-exec — deterministic parallel sweeps and a compile cache
//!
//! Every throughput consumer of the pipeline — the experiments harness,
//! `clasp-cli fuzz`, `clasp-cli batch`, the bench report — runs the same
//! shape of work: a large list of independent (loop, machine) cases whose
//! per-case cost varies by orders of magnitude. The hand-rolled chunked
//! `parallel_map` this crate replaces had two bugs baked into its shape:
//!
//! - **stragglers**: static chunking pinned each contiguous slice to one
//!   thread, so a chunk of slow compiles serialized the sweep while other
//!   workers sat idle;
//! - **panic amnesia**: `join().expect("worker panicked")` aborted the
//!   whole sweep, discarding every finished result and every clue about
//!   *which* case panicked.
//!
//! [`sweep`] fixes both: workers pull the next item from a shared atomic
//! cursor (self-balancing — no chunk boundaries to straggle on), every
//! item runs under panic capture, and results land in their input slot so
//! the output order is the input order, bit-identical for any thread
//! count. See the module docs of [`executor`] for the full determinism
//! contract.
//!
//! [`ContentCache`] is the second half: a content-addressed memo table
//! keyed by an FNV-1a hash of canonical input texts, with deterministic
//! hit/miss counters (exactly one miss per distinct key, no matter how
//! many threads race to it). Grid sweeps that revisit the same
//! loop × machine pair compile it once. The [`tier`] module layers a
//! persistent [`DiskTier`] below it (memory-over-disk via
//! [`TieredCache`]) so warm answers survive a process restart, and the
//! cache itself can be byte-budget bounded for long-running daemons.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod executor;
pub mod tier;

pub use cache::{CacheKey, CacheStats, ContentCache, KeyBuilder, KeySink};
pub use executor::{
    resolve_threads, sweep, sweep_observed, sweep_with, sweep_with_observed, try_sweep,
    try_sweep_observed, SweepPanic,
};
pub use tier::{CacheTier, DiskTier, TierGrade, TierLoad, TierStats, TieredCache, TieredStats};
