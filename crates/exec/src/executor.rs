//! The deterministic work-stealing executor.
//!
//! # Determinism contract
//!
//! For a pure per-item function `f`, the output of [`try_sweep`] (and of
//! [`sweep`] / [`sweep_with`] on the success path) is **bit-identical for
//! every thread count**, including 1:
//!
//! - results are collected *seed-ordered*: item `i`'s result is written
//!   to slot `i`, so the output `Vec` is in input order regardless of
//!   which worker ran which item or when it finished;
//! - each item is processed exactly once, by exactly one worker, with no
//!   per-thread state influencing the result (the per-worker context of
//!   [`sweep_with`] is scratch: the contract requires `f(ctx, i, item)`
//!   to return the same value for any context produced by `make_ctx`);
//! - the sweep never stops early: even after a panic, the remaining
//!   items still run, so the error reported by [`sweep`] is always the
//!   *lowest-indexed* panicking item — the same one a serial run would
//!   hit first.
//!
//! Scheduling is dynamic: workers pull the next item from a shared
//! atomic cursor, so a straggler (one case whose compile takes 1000x the
//! median) occupies one worker while the rest drain the tail. This is
//! the property the old chunked map lacked — it pre-sliced the input, so
//! one slow chunk serialized the whole sweep.
//!
//! # Panic capture
//!
//! Each item runs under [`std::panic::catch_unwind`]. A panic is
//! recorded against its item index with its payload rendered to a
//! string; [`sweep`] attaches the caller's label for that item and
//! returns a typed [`SweepPanic`] instead of poisoning the process. The
//! sweep still completes every other item first, so a multi-panic run
//! reports deterministically (lowest index wins).

use clasp_obs::{Counter, Obs};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One captured worker panic, labelled with the case that caused it.
///
/// This is the typed replacement for the old harness's
/// `join().expect("worker panicked")`: the sweep fails, but the caller
/// learns *which* case failed and why, and every other case still ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPanic {
    /// Input index of the panicking item.
    pub index: usize,
    /// The caller-supplied label of the item (loop and machine names,
    /// a case seed — whatever replays the failure).
    pub label: String,
    /// The panic payload, rendered to a string.
    pub payload: String,
}

impl fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "case {} ({}) panicked: {}",
            self.index, self.label, self.payload
        )
    }
}

impl std::error::Error for SweepPanic {}

/// Resolve a thread-count request: `0` (or anything larger than the item
/// count) is clamped to `min(available_parallelism, items)`, never below
/// 1. Pass `0` for "use the machine".
pub fn resolve_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let cap = if requested == 0 { hw } else { requested };
    cap.min(items.max(1)).max(1)
}

/// Render a `catch_unwind` payload: panics carry `&str` or `String`
/// almost always; anything else is reported opaquely.
fn render_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` on `threads` workers (0 = auto), returning one
/// `Result` per item in input order: `Ok(r)` for items that completed,
/// `Err(payload)` for items that panicked. Never stops early.
///
/// `make_ctx` builds one context per worker thread, handed mutably to
/// every item that worker processes — the hook that keeps expensive
/// scratch state (allocation-free scheduling contexts, cache handles)
/// warm across cases instead of rebuilding it per case.
pub fn try_sweep<T, R, W>(
    threads: usize,
    items: &[T],
    make_ctx: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, usize, &T) -> R + Sync,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
{
    try_sweep_observed(threads, items, make_ctx, f, &Obs::disabled())
}

/// [`try_sweep`] recording into an observability sink: one
/// `exec.sweep` span over the whole run, one `exec.worker` span per
/// worker whose `items` argument is the number of items that worker
/// pulled from the shared cursor (the per-worker distribution — a
/// starved worker shows few items against a long span, which is what
/// steal contention looks like under dynamic scheduling). Only the
/// [`Counter::ExecItems`] total is deterministic; the per-worker
/// distribution is inherently racy and stays in span args.
pub fn try_sweep_observed<T, R, W>(
    threads: usize,
    items: &[T],
    make_ctx: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, usize, &T) -> R + Sync,
    obs: &Obs,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let threads = resolve_threads(threads, n);
    let sweep_span = obs.begin("exec.sweep");
    let results = if threads <= 1 {
        let worker_span = obs.begin("exec.worker");
        let mut ctx = make_ctx();
        let out: Vec<Result<R, String>> = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r =
                    catch_unwind(AssertUnwindSafe(|| f(&mut ctx, i, item))).map_err(render_payload);
                obs.add(Counter::ExecItems, 1);
                r
            })
            .collect();
        obs.end_with(worker_span, || vec![("items", n.to_string())]);
        out
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, String>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let worker_span = obs.begin("exec.worker");
                    let mut pulled = 0u64;
                    let mut ctx = make_ctx();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        pulled += 1;
                        let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx, i, &items[i])))
                            .map_err(render_payload);
                        obs.add(Counter::ExecItems, 1);
                        *slots[i].lock().expect("slot lock") = Some(result);
                    }
                    obs.end_with(worker_span, || vec![("items", pulled.to_string())]);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("slot filled"))
            .collect()
    };
    obs.end_with(sweep_span, || {
        vec![("items", n.to_string()), ("threads", threads.to_string())]
    });
    results
}

/// [`try_sweep`] with a per-worker context, failing the whole sweep with
/// a labelled [`SweepPanic`] if any item panicked (lowest index wins; all
/// items still run first, so the choice is thread-count independent).
///
/// # Errors
///
/// [`SweepPanic`] for the lowest-indexed panicking item.
pub fn sweep_with<T, R, W>(
    threads: usize,
    items: &[T],
    make_ctx: impl Fn() -> W + Sync,
    label: impl Fn(usize, &T) -> String,
    f: impl Fn(&mut W, usize, &T) -> R + Sync,
) -> Result<Vec<R>, SweepPanic>
where
    T: Sync,
    R: Send,
{
    sweep_with_observed(threads, items, make_ctx, label, f, &Obs::disabled())
}

/// [`sweep_with`] recording into an observability sink (see
/// [`try_sweep_observed`] for what is recorded).
///
/// # Errors
///
/// [`SweepPanic`] for the lowest-indexed panicking item.
pub fn sweep_with_observed<T, R, W>(
    threads: usize,
    items: &[T],
    make_ctx: impl Fn() -> W + Sync,
    label: impl Fn(usize, &T) -> String,
    f: impl Fn(&mut W, usize, &T) -> R + Sync,
    obs: &Obs,
) -> Result<Vec<R>, SweepPanic>
where
    T: Sync,
    R: Send,
{
    let mut out = Vec::with_capacity(items.len());
    for (i, result) in try_sweep_observed(threads, items, make_ctx, f, obs)
        .into_iter()
        .enumerate()
    {
        match result {
            Ok(r) => out.push(r),
            Err(payload) => {
                return Err(SweepPanic {
                    index: i,
                    label: label(i, &items[i]),
                    payload,
                })
            }
        }
    }
    Ok(out)
}

/// Context-free [`sweep_with`]: the plain deterministic parallel map.
///
/// # Errors
///
/// [`SweepPanic`] for the lowest-indexed panicking item.
pub fn sweep<T, R>(
    threads: usize,
    items: &[T],
    label: impl Fn(usize, &T) -> String,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Result<Vec<R>, SweepPanic>
where
    T: Sync,
    R: Send,
{
    sweep_with(threads, items, || (), label, |(), i, item| f(i, item))
}

/// [`sweep`] recording into an observability sink (see
/// [`try_sweep_observed`] for what is recorded).
///
/// # Errors
///
/// [`SweepPanic`] for the lowest-indexed panicking item.
pub fn sweep_observed<T, R>(
    threads: usize,
    items: &[T],
    label: impl Fn(usize, &T) -> String,
    f: impl Fn(usize, &T) -> R + Sync,
    obs: &Obs,
) -> Result<Vec<R>, SweepPanic>
where
    T: Sync,
    R: Send,
{
    sweep_with_observed(threads, items, || (), label, |(), i, item| f(i, item), obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn output_is_input_ordered_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = sweep(1, &items, |i, _| i.to_string(), |_, &x| x * x).unwrap();
        for threads in [2, 3, 8, 64] {
            let parallel = sweep(threads, &items, |i, _| i.to_string(), |_, &x| x * x).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    /// Regression for the old chunked `parallel_map`: a single panicking
    /// case took the whole sweep down via `join().expect("worker
    /// panicked")` with no record of which case failed. The executor
    /// must instead report the case's index and label as a typed error.
    #[test]
    fn panic_is_captured_with_case_label() {
        let items: Vec<u32> = (0..100).collect();
        let err = sweep(
            4,
            &items,
            |_, &x| format!("loop-{x} on 4c-gp"),
            |_, &x| {
                if x == 37 {
                    panic!("no schedule at II {x}");
                }
                x
            },
        )
        .unwrap_err();
        assert_eq!(err.index, 37);
        assert_eq!(err.label, "loop-37 on 4c-gp");
        assert_eq!(err.payload, "no schedule at II 37");
        assert!(err.to_string().contains("loop-37 on 4c-gp"));
    }

    #[test]
    fn multi_panic_reports_lowest_index_on_every_thread_count() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 2, 7, 32] {
            let err = sweep(
                threads,
                &items,
                |i, _| format!("case {i}"),
                |_, &x| {
                    if x % 10 == 3 {
                        panic!("boom {x}");
                    }
                    x
                },
            )
            .unwrap_err();
            assert_eq!(err.index, 3, "threads = {threads}");
            assert_eq!(err.payload, "boom 3");
        }
    }

    #[test]
    fn all_items_run_despite_panics() {
        let ran = AtomicUsize::new(0);
        let items: Vec<u32> = (0..50).collect();
        let results = try_sweep(
            4,
            &items,
            || (),
            |(), _, &x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("first item");
                }
                x
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 50);
        assert_eq!(results.len(), 50);
        assert!(results[0].is_err());
        assert!(results[1..].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn worker_contexts_are_reused_across_items() {
        // Each worker's context counts the items it processed; the sum
        // over workers must equal the item count (every item touched a
        // context exactly once), and with 1 thread a single context sees
        // everything — i.e. the context genuinely persists across items.
        let items: Vec<u32> = (0..40).collect();
        let results = sweep_with(
            1,
            &items,
            || 0usize,
            |i, _| i.to_string(),
            |seen, _, &x| {
                *seen += 1;
                (*seen, x)
            },
        )
        .unwrap();
        assert_eq!(results.last().unwrap().0, 40);
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(0, 0), 1);
        assert_eq!(resolve_threads(5, 0), 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        let out = sweep(4, &items, |_, _| String::new(), |_, &x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn non_string_payload_is_reported_opaquely() {
        let items = [1u32];
        let err = sweep(
            1,
            &items,
            |_, _| "only".into(),
            |_, _| std::panic::panic_any(42u32),
        )
        .unwrap_err();
        assert_eq!(err.payload, "non-string panic payload");
    }
}
