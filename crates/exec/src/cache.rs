//! A content-addressed memo table for compiled artifacts.
//!
//! # Key derivation
//!
//! A cache key is the 128-bit FNV-1a hash of the *canonical texts* of
//! the inputs — for the compile cache, the `.clasp` rendering of the
//! loop, the `.machine` rendering of the target, and a stable rendering
//! of the pipeline configuration — combined so part boundaries can never
//! alias (`("ab", "c") != ("a", "bc")`). Hashing the canonical text
//! rather than an in-memory address means two independently constructed
//! but identical inputs share one entry: the cache is addressed by
//! content, not identity.
//!
//! Two constructions exist. [`CacheKey::of`] length-prefixes each part's
//! bytes — fine when the parts are already `&str`s. [`KeyBuilder`]
//! instead hashes each part to its own 128-bit digest and folds the
//! fixed-width digests into an outer hash, which permits *streaming* a
//! part through [`fmt::Write`] without knowing its length up front (and
//! therefore without allocating an intermediate `String`). The two
//! constructions yield different key values for the same content; a
//! cache must pick one and stick with it, which is why persisted tiers
//! carry a format tag (see [`tier`](crate::tier)).
//!
//! FNV-1a is deliberate: `std`'s `DefaultHasher` randomizes per process,
//! which would make hit patterns (and any logged key) unstable across
//! runs. FNV's 128-bit variant is deterministic forever and collisions
//! at sweep scale (thousands of entries) are vanishingly unlikely; a
//! collision's worst case is returning the colliding entry's artifact,
//! which downstream equality gates (bit-identical II / kernel asserts)
//! would surface immediately.
//!
//! # Deterministic counters
//!
//! Each distinct key counts **exactly one miss** — the thread that
//! installs the entry — and every other lookup of that key counts a hit,
//! even when many threads race to a cold key: latecomers block on the
//! entry's [`OnceLock`] rather than recomputing. Total hits and misses
//! for a fixed workload are therefore independent of thread count and
//! interleaving, which is what lets `BENCH_sched.json` and the CI
//! determinism gate record them as stable numbers.
//!
//! # Bounding
//!
//! A cache is unbounded by default — sweeps are finite and the batch /
//! bench flows want every entry resident. A long-running daemon cannot
//! tolerate that, so [`ContentCache::bounded`] accepts a byte budget and
//! evicts with a **keyed-order second-chance** sweep: entries are kept
//! in key order (a `BTreeMap`), every hit sets a referenced bit, and
//! when the recorded weights exceed the budget a clock hand walks keys
//! in ascending (wrapping) order, clearing referenced bits and evicting
//! the first unreferenced, fully-installed entry. The policy depends
//! only on the sequence of operations — never on wall-clock time — so a
//! single-threaded workload replays to the identical resident set.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content hash identifying one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Hash `parts` into a key: FNV-1a over each part's bytes, with each
    /// part preceded by its length so boundaries never alias.
    pub fn of(parts: &[&str]) -> CacheKey {
        let mut h = FNV128_OFFSET;
        for part in parts {
            for b in (part.len() as u64).to_le_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            for &b in part.as_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
        }
        CacheKey(h)
    }

    /// The key's raw 128-bit value (used by the disk tier to derive
    /// shard paths without going through the hex rendering).
    pub fn value(&self) -> u128 {
        self.0
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An FNV-1a accumulator for one key part, fed through [`fmt::Write`] so
/// canonical texts can be rendered straight into the hash with zero
/// intermediate allocation. Obtain one via [`KeyBuilder::stream`].
#[derive(Debug)]
pub struct KeySink {
    h: u128,
}

impl KeySink {
    fn new() -> KeySink {
        KeySink { h: FNV128_OFFSET }
    }

    /// Fold raw bytes into the part's digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        for &b in bytes {
            h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
        }
        self.h = h;
    }
}

impl fmt::Write for KeySink {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Streaming construction of a [`CacheKey`] from a sequence of parts.
///
/// Each part is hashed to its own 128-bit digest, and the fixed-width
/// (16-byte) digests are folded into an outer FNV-1a hash; because every
/// sub-digest has the same width, part boundaries cannot alias even
/// though no part length is known up front. Parts can be added as whole
/// strings ([`KeyBuilder::text`]) or rendered incrementally through a
/// [`KeySink`] ([`KeyBuilder::stream`]) — the two are equivalent for
/// equal content.
#[derive(Debug, Default)]
pub struct KeyBuilder {
    h: u128,
    started: bool,
}

impl KeyBuilder {
    /// A builder with no parts.
    pub fn new() -> KeyBuilder {
        KeyBuilder {
            h: FNV128_OFFSET,
            started: true,
        }
    }

    fn fold(&mut self, digest: u128) {
        if !self.started {
            self.h = FNV128_OFFSET;
            self.started = true;
        }
        let mut h = self.h;
        for b in digest.to_le_bytes() {
            h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
        }
        self.h = h;
    }

    /// Add one part given as a whole string.
    pub fn text(&mut self, s: &str) {
        self.stream(|w| w.write_bytes(s.as_bytes()));
    }

    /// Add one part by rendering it into a [`KeySink`]. `KeySink`
    /// implements [`fmt::Write`], so `write!(sink, ...)` works and
    /// never fails.
    pub fn stream(&mut self, f: impl FnOnce(&mut KeySink)) {
        let mut sink = KeySink::new();
        f(&mut sink);
        self.fold(sink.h);
    }

    /// The key for the parts added so far.
    pub fn finish(&self) -> CacheKey {
        CacheKey(if self.started { self.h } else { FNV128_OFFSET })
    }
}

/// Hit/miss/entry counters of a [`ContentCache`], as sampled by
/// [`ContentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that computed and installed a new entry.
    pub misses: u64,
    /// Distinct keys currently resident (equals `misses` minus
    /// `evictions` for a quiescent cache).
    pub entries: u64,
    /// Entries removed by the byte-budget policy (always 0 for an
    /// unbounded cache).
    pub evictions: u64,
    /// Recorded bytes currently resident (0 unless the caller supplies
    /// weights via [`ContentCache::get_or_compute_weighed`]).
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hit fraction in percent (0 when the cache was never consulted).
    pub fn hit_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        100.0 * self.hits as f64 / total as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({:.1}% hit rate, {} entries",
            self.hits,
            self.misses,
            self.hit_percent(),
            self.entries
        )?;
        if self.evictions > 0 {
            write!(f, ", {} evicted", self.evictions)?;
        }
        write!(f, ")")
    }
}

struct Entry<V> {
    cell: Arc<OnceLock<Arc<V>>>,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// passes over the entry.
    referenced: bool,
    /// Caller-recorded weight in bytes; 0 until the value is installed
    /// (in-flight entries are never evicted).
    weight: usize,
    installed: bool,
}

struct State<V> {
    map: BTreeMap<CacheKey, Entry<V>>,
    /// Next key the eviction clock hand will consider (wraps at the
    /// keyed end of the map).
    hand: Option<CacheKey>,
    resident_bytes: usize,
    evictions: u64,
}

/// A thread-safe content-addressed memo table from [`CacheKey`] to
/// `Arc<V>`. Unbounded by default ([`ContentCache::new`]); a daemon
/// composes it with a byte budget ([`ContentCache::bounded`]) so the
/// keyed-order second-chance policy described in the module docs keeps
/// residency under control.
pub struct ContentCache<V> {
    state: Mutex<State<V>>,
    budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> fmt::Debug for ContentCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContentCache")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

// Manual impl: `V` need not be `Default` for an empty cache to exist.
impl<V> Default for ContentCache<V> {
    fn default() -> Self {
        ContentCache::new()
    }
}

impl<V> ContentCache<V> {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ContentCache::with_budget(None)
    }

    /// An empty cache that evicts once the recorded weights exceed
    /// `budget_bytes`. Weights are supplied by the caller through
    /// [`ContentCache::get_or_compute_weighed`]; lookups through the
    /// unweighed entry points record weight 0 and are effectively
    /// pinned.
    pub fn bounded(budget_bytes: usize) -> Self {
        ContentCache::with_budget(Some(budget_bytes))
    }

    /// An empty cache with an optional byte budget (`None` = unbounded).
    pub fn with_budget(budget: Option<usize>) -> Self {
        ContentCache {
            state: Mutex::new(State {
                map: BTreeMap::new(),
                hand: None,
                resident_bytes: 0,
                evictions: 0,
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Return the entry for `key`, computing and installing it with
    /// `compute` on the first lookup. Concurrent lookups of a cold key
    /// block on the installer rather than recomputing, so `compute` runs
    /// exactly once per key and the hit/miss counters are deterministic.
    pub fn get_or_compute(&self, key: CacheKey, compute: impl FnOnce() -> V) -> Arc<V> {
        self.get_or_compute_info(key, compute).0
    }

    /// [`ContentCache::get_or_compute`], also reporting whether *this*
    /// lookup was the key's one counted miss (`true`) or a hit
    /// (`false`) — the hook callers use to fold per-lookup hit/miss
    /// counts into an observability sink with the same determinism
    /// contract as [`ContentCache::stats`].
    pub fn get_or_compute_info(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> V,
    ) -> (Arc<V>, bool) {
        let (value, missed, _) = self.get_or_compute_weighed(key, || (compute(), 0));
        (value, missed)
    }

    /// [`ContentCache::get_or_compute_info`] with the computed value's
    /// weight in bytes, which the byte-budget policy charges against the
    /// budget. Returns `(value, missed, evicted)` where `evicted` is the
    /// number of entries *this* call's installation pushed out — the
    /// hook for folding `cache.evictions` into an observability sink.
    pub fn get_or_compute_weighed(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> (V, usize),
    ) -> (Arc<V>, bool, u64) {
        let (cell, installer) = {
            let mut state = self.state.lock().expect("cache map lock");
            match state.map.get_mut(&key) {
                Some(entry) => {
                    entry.referenced = true;
                    (Arc::clone(&entry.cell), false)
                }
                None => {
                    let cell = Arc::new(OnceLock::new());
                    state.map.insert(
                        key,
                        Entry {
                            cell: Arc::clone(&cell),
                            referenced: false,
                            weight: 0,
                            installed: false,
                        },
                    );
                    (cell, true)
                }
            }
        };
        if installer {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // Whichever caller's closure actually initializes the cell (the
        // installer, or — if the installer panicked — a recovering
        // latecomer) records the weight and settles the budget.
        let mut my_weight: Option<usize> = None;
        let value = Arc::clone(cell.get_or_init(|| {
            let (v, weight) = compute();
            my_weight = Some(weight);
            Arc::new(v)
        }));
        let mut evicted = 0;
        if let Some(weight) = my_weight {
            let mut state = self.state.lock().expect("cache map lock");
            if let Some(entry) = state.map.get_mut(&key) {
                // Guard against a racing re-install after an eviction:
                // only account the cell we initialized.
                if Arc::ptr_eq(&entry.cell, &cell) {
                    entry.weight = weight;
                    entry.installed = true;
                    state.resident_bytes += weight;
                    if let Some(budget) = self.budget {
                        evicted = evict_to_budget(&mut state, budget);
                    }
                }
            }
        }
        (value, installer, evicted)
    }

    /// Sample the counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache map lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: state.map.len() as u64,
            evictions: state.evictions,
            resident_bytes: state.resident_bytes as u64,
        }
    }
}

/// One keyed-order second-chance sweep: evict installed, unreferenced
/// entries (clearing referenced bits as the hand passes) until the
/// recorded weights fit the budget or nothing evictable remains.
/// Returns the number of entries evicted.
fn evict_to_budget<V>(state: &mut State<V>, budget: usize) -> u64 {
    let mut evicted = 0;
    while state.resident_bytes > budget {
        // Two full passes suffice: the first clears every referenced
        // bit, the second must find a victim unless every entry is
        // still in flight.
        let mut fuel = 2 * state.map.len() + 2;
        let mut victim = None;
        let mut hand = state.hand;
        while fuel > 0 {
            fuel -= 1;
            let next = match hand {
                Some(h) => state.map.range(h..).next().map(|(k, _)| *k),
                None => state.map.keys().next().copied(),
            };
            let key = match next {
                Some(k) => k,
                None => {
                    // Ran off the keyed end: wrap.
                    hand = None;
                    continue;
                }
            };
            let entry = state.map.get_mut(&key).expect("keyed entry");
            let after = CacheKey(key.0.wrapping_add(1));
            if !entry.installed {
                hand = Some(after);
                continue;
            }
            if entry.referenced {
                entry.referenced = false;
                hand = Some(after);
                continue;
            }
            victim = Some(key);
            hand = Some(after);
            break;
        }
        state.hand = hand;
        match victim {
            Some(key) => {
                let entry = state.map.remove(&key).expect("victim entry");
                state.resident_bytes = state.resident_bytes.saturating_sub(entry.weight);
                state.evictions += 1;
                evicted += 1;
            }
            // Every entry is in flight (or the map is empty): nothing
            // can be evicted right now.
            None => break,
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn keys_are_content_addressed() {
        assert_eq!(CacheKey::of(&["a", "b"]), CacheKey::of(&["a", "b"]));
        assert_ne!(CacheKey::of(&["ab", "c"]), CacheKey::of(&["a", "bc"]));
        assert_ne!(CacheKey::of(&["a"]), CacheKey::of(&["a", ""]));
        // Identical content from different owners hashes identically.
        let x = String::from("loop dot");
        let y = String::from("loop dot");
        assert_eq!(CacheKey::of(&[&x]), CacheKey::of(&[&y]));
    }

    #[test]
    fn key_rendering_is_stable() {
        // Pinned value: a changed hash function would silently invalidate
        // any recorded key, so lock it down.
        assert_eq!(
            CacheKey::of(&["clasp"]).to_string(),
            CacheKey::of(&["clasp"]).to_string()
        );
        assert_eq!(CacheKey::of(&[]).to_string().len(), 32);
    }

    #[test]
    fn builder_parts_do_not_alias() {
        let key = |parts: &[&str]| {
            let mut b = KeyBuilder::new();
            for p in parts {
                b.text(p);
            }
            b.finish()
        };
        assert_eq!(key(&["a", "b"]), key(&["a", "b"]));
        assert_ne!(key(&["ab", "c"]), key(&["a", "bc"]));
        assert_ne!(key(&["a"]), key(&["a", ""]));
        assert_ne!(key(&[]), key(&[""]));
    }

    #[test]
    fn builder_streaming_equals_whole_text() {
        use std::fmt::Write as _;
        let mut whole = KeyBuilder::new();
        whole.text("loop dot\nop n0 alu");
        whole.text("machine #");
        let mut streamed = KeyBuilder::new();
        streamed.stream(|w| {
            w.write_bytes(b"loop ");
            write!(w, "dot").unwrap();
            write!(w, "\nop n{} alu", 0).unwrap();
        });
        streamed.stream(|w| write!(w, "machine #").unwrap());
        assert_eq!(whole.finish(), streamed.finish());
    }

    #[test]
    fn second_lookup_hits_and_reuses_the_value() {
        let cache: ContentCache<u64> = ContentCache::new();
        let key = CacheKey::of(&["k"]);
        let calls = AtomicUsize::new(0);
        let a = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        });
        let b = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::Relaxed);
            999
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(*a, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1,
                evictions: 0,
                resident_bytes: 0,
            }
        );
    }

    #[test]
    fn counters_are_deterministic_under_contention() {
        // 8 threads x 100 lookups over 10 keys: exactly 10 misses (one
        // per distinct key), everything else hits — regardless of how the
        // race to each cold key interleaves.
        let cache: ContentCache<usize> = ContentCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..100 {
                        let key = CacheKey::of(&[&(i % 10).to_string()]);
                        let v = cache.get_or_compute(key, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            i % 10
                        });
                        assert_eq!(*v, i % 10);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 10);
        let stats = cache.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 8 * 100 - 10);
        assert_eq!(stats.entries, 10);
    }

    #[test]
    fn stats_display_reads_well() {
        let cache: ContentCache<u8> = ContentCache::new();
        cache.get_or_compute(CacheKey::of(&["a"]), || 1);
        cache.get_or_compute(CacheKey::of(&["a"]), || 1);
        cache.get_or_compute(CacheKey::of(&["b"]), || 2);
        let s = cache.stats().to_string();
        assert!(s.contains("1 hits"), "{s}");
        assert!(s.contains("2 misses"), "{s}");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache: ContentCache<u64> = ContentCache::new();
        for i in 0..100u64 {
            cache.get_or_compute_weighed(CacheKey::of(&[&i.to_string()]), || (i, 1 << 20));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 100);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, 100 << 20);
    }

    #[test]
    fn budget_evicts_in_keyed_order() {
        // Budget of 3 unit-weight entries: installing a 4th evicts the
        // keyed-smallest unreferenced entry.
        let cache: ContentCache<u64> = ContentCache::bounded(3);
        let keys: Vec<CacheKey> = (0..4u64).map(|i| CacheKey::of(&[&i.to_string()])).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        for (i, &k) in keys.iter().enumerate() {
            cache.get_or_compute_weighed(k, || (i as u64, 1));
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.resident_bytes, 3);
        // The evicted key recomputes (a fresh miss), the survivors hit.
        // Weight 0 here so the probe itself can't trigger a cascade.
        let recomputed = AtomicUsize::new(0);
        for &k in &keys {
            cache.get_or_compute_weighed(k, || {
                recomputed.fetch_add(1, Ordering::Relaxed);
                (0, 0)
            });
        }
        assert_eq!(recomputed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn second_chance_spares_referenced_entries() {
        let cache: ContentCache<u64> = ContentCache::bounded(2);
        let a = CacheKey::of(&["a"]);
        let b = CacheKey::of(&["b"]);
        cache.get_or_compute_weighed(a, || (1, 1));
        cache.get_or_compute_weighed(b, || (2, 1));
        // Touch both: their referenced bits are set, so the next
        // eviction pass clears bits on the first pass and evicts the
        // keyed-first entry on the second.
        cache.get_or_compute_weighed(a, || (0, 1));
        cache.get_or_compute_weighed(b, || (0, 1));
        let c = CacheKey::of(&["c"]);
        let (_, _, evicted) = cache.get_or_compute_weighed(c, || (3, 1));
        assert_eq!(evicted, 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn eviction_replays_identically() {
        // The policy is a pure function of the operation sequence: two
        // caches fed the same single-threaded workload end with the
        // same resident set.
        let run = || {
            let cache: ContentCache<u64> = ContentCache::bounded(4);
            let op_keys: Vec<CacheKey> = (0..12u64)
                .map(|i| CacheKey::of(&[&(i % 7).to_string()]))
                .collect();
            for &k in &op_keys {
                cache.get_or_compute_weighed(k, || (0, 1));
            }
            let mut resident = Vec::new();
            for i in 0..7u64 {
                let key = CacheKey::of(&[&i.to_string()]);
                let (_, missed, _) = cache.get_or_compute_weighed(key, || (0, 0));
                if !missed {
                    resident.push(i);
                }
            }
            (cache.stats().evictions, resident)
        };
        assert_eq!(run(), run());
    }
}
