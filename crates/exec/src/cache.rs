//! A content-addressed memo table for compiled artifacts.
//!
//! # Key derivation
//!
//! A cache key is the 128-bit FNV-1a hash of the *canonical texts* of
//! the inputs — for the compile cache, the `.clasp` rendering of the
//! loop, the `.machine` rendering of the target, and a stable rendering
//! of the pipeline configuration — each part fed through the hash with a
//! length prefix so part boundaries can never alias
//! (`("ab", "c") != ("a", "bc")`). Hashing the canonical text rather
//! than an in-memory address means two independently constructed but
//! identical inputs share one entry: the cache is addressed by content,
//! not identity.
//!
//! FNV-1a is deliberate: `std`'s `DefaultHasher` randomizes per process,
//! which would make hit patterns (and any logged key) unstable across
//! runs. FNV's 128-bit variant is deterministic forever and collisions
//! at sweep scale (thousands of entries) are vanishingly unlikely; a
//! collision's worst case is returning the colliding entry's artifact,
//! which downstream equality gates (bit-identical II / kernel asserts)
//! would surface immediately.
//!
//! # Deterministic counters
//!
//! Each distinct key counts **exactly one miss** — the thread that
//! installs the entry — and every other lookup of that key counts a hit,
//! even when many threads race to a cold key: latecomers block on the
//! entry's [`OnceLock`] rather than recomputing. Total hits and misses
//! for a fixed workload are therefore independent of thread count and
//! interleaving, which is what lets `BENCH_sched.json` and the CI
//! determinism gate record them as stable numbers.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content hash identifying one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Hash `parts` into a key: FNV-1a over each part's bytes, with each
    /// part preceded by its length so boundaries never alias.
    pub fn of(parts: &[&str]) -> CacheKey {
        let mut h = FNV128_OFFSET;
        for part in parts {
            for b in (part.len() as u64).to_le_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            for &b in part.as_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
        }
        CacheKey(h)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Hit/miss/entry counters of a [`ContentCache`], as sampled by
/// [`ContentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that computed and installed a new entry.
    pub misses: u64,
    /// Distinct keys resident (always equals `misses`: nothing evicts).
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction in percent (0 when the cache was never consulted).
    pub fn hit_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        100.0 * self.hits as f64 / total as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({:.1}% hit rate, {} entries)",
            self.hits,
            self.misses,
            self.hit_percent(),
            self.entries
        )
    }
}

/// A thread-safe content-addressed memo table from [`CacheKey`] to
/// `Arc<V>`. Entries live for the cache's lifetime (sweeps are bounded;
/// there is no eviction).
#[derive(Debug)]
pub struct ContentCache<V> {
    map: Mutex<HashMap<CacheKey, Arc<OnceLock<Arc<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// Manual impl: `V` need not be `Default` for an empty cache to exist.
impl<V> Default for ContentCache<V> {
    fn default() -> Self {
        ContentCache::new()
    }
}

impl<V> ContentCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        ContentCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Return the entry for `key`, computing and installing it with
    /// `compute` on the first lookup. Concurrent lookups of a cold key
    /// block on the installer rather than recomputing, so `compute` runs
    /// exactly once per key and the hit/miss counters are deterministic.
    pub fn get_or_compute(&self, key: CacheKey, compute: impl FnOnce() -> V) -> Arc<V> {
        self.get_or_compute_info(key, compute).0
    }

    /// [`ContentCache::get_or_compute`], also reporting whether *this*
    /// lookup was the key's one counted miss (`true`) or a hit
    /// (`false`) — the hook callers use to fold per-lookup hit/miss
    /// counts into an observability sink with the same determinism
    /// contract as [`ContentCache::stats`].
    pub fn get_or_compute_info(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> V,
    ) -> (Arc<V>, bool) {
        let (cell, installer) = {
            let mut map = self.map.lock().expect("cache map lock");
            match map.get(&key) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if installer {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let value = Arc::clone(cell.get_or_init(|| Arc::new(compute())));
        (value, installer)
    }

    /// Sample the counters.
    pub fn stats(&self) -> CacheStats {
        let misses = self.misses.load(Ordering::Relaxed);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses,
            entries: misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn keys_are_content_addressed() {
        assert_eq!(CacheKey::of(&["a", "b"]), CacheKey::of(&["a", "b"]));
        assert_ne!(CacheKey::of(&["ab", "c"]), CacheKey::of(&["a", "bc"]));
        assert_ne!(CacheKey::of(&["a"]), CacheKey::of(&["a", ""]));
        // Identical content from different owners hashes identically.
        let x = String::from("loop dot");
        let y = String::from("loop dot");
        assert_eq!(CacheKey::of(&[&x]), CacheKey::of(&[&y]));
    }

    #[test]
    fn key_rendering_is_stable() {
        // Pinned value: a changed hash function would silently invalidate
        // any recorded key, so lock it down.
        assert_eq!(
            CacheKey::of(&["clasp"]).to_string(),
            CacheKey::of(&["clasp"]).to_string()
        );
        assert_eq!(CacheKey::of(&[]).to_string().len(), 32);
    }

    #[test]
    fn second_lookup_hits_and_reuses_the_value() {
        let cache: ContentCache<u64> = ContentCache::new();
        let key = CacheKey::of(&["k"]);
        let calls = AtomicUsize::new(0);
        let a = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        });
        let b = cache.get_or_compute(key, || {
            calls.fetch_add(1, Ordering::Relaxed);
            999
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(*a, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn counters_are_deterministic_under_contention() {
        // 8 threads x 100 lookups over 10 keys: exactly 10 misses (one
        // per distinct key), everything else hits — regardless of how the
        // race to each cold key interleaves.
        let cache: ContentCache<usize> = ContentCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..100 {
                        let key = CacheKey::of(&[&(i % 10).to_string()]);
                        let v = cache.get_or_compute(key, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            i % 10
                        });
                        assert_eq!(*v, i % 10);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 10);
        let stats = cache.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 8 * 100 - 10);
        assert_eq!(stats.entries, 10);
    }

    #[test]
    fn stats_display_reads_well() {
        let cache: ContentCache<u8> = ContentCache::new();
        cache.get_or_compute(CacheKey::of(&["a"]), || 1);
        cache.get_or_compute(CacheKey::of(&["a"]), || 1);
        cache.get_or_compute(CacheKey::of(&["b"]), || 2);
        let s = cache.stats().to_string();
        assert!(s.contains("1 hits"), "{s}");
        assert!(s.contains("2 misses"), "{s}");
    }
}
