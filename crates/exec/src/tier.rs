//! Cache tiering: a persistence contract behind [`ContentCache`].
//!
//! The in-memory [`ContentCache`] answers warm lookups in microseconds
//! but dies with the process. A [`CacheTier`] is the slower layer
//! consulted on a memory miss: [`DiskTier`] persists encoded payloads
//! in shard-per-prefix directories keyed by the same 128-bit content
//! hash, and [`TieredCache`] composes memory-over-disk with exact
//! hit/miss/promote accounting.
//!
//! # Shard layout and header
//!
//! `DiskTier` stores each entry at `<root>/<hh>/<32-hex-key>` where
//! `hh` is the first byte of the key in hex — 256 shard directories so
//! no single directory grows unboundedly. Every file starts with a
//! one-line header:
//!
//! ```text
//! clasp-cache/1 <format-tag> <payload-bytes>
//! ```
//!
//! followed by exactly `<payload-bytes>` bytes of UTF-8 payload. The
//! *format tag* is supplied by the composing layer and names the
//! payload encoding (the compile service uses the artifact codec's
//! version string); a tag mismatch is a plain **miss** — an old cache
//! directory is stale, not corrupt — while a malformed header, a length
//! mismatch (truncation), or invalid UTF-8 is a **disk error**: the
//! lookup degrades to a miss and the error counter ticks, but nothing
//! panics.
//!
//! # Atomicity
//!
//! Writes go to a tempfile in the shard directory (name salted with the
//! process id) and are renamed into place. Readers therefore only ever
//! observe absent files or complete files, and two processes sharing a
//! cache directory race benignly: the loser's rename replaces the
//! winner's identical content.

use crate::cache::{CacheKey, CacheStats, ContentCache};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic prefix of every shard file header; the `/1` is the layout
/// version of the header itself, independent of the payload format tag.
const HEADER_MAGIC: &str = "clasp-cache/1";

/// Outcome of a [`CacheTier::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierLoad {
    /// The tier held a complete, well-formed payload.
    Hit(String),
    /// The tier has no entry for the key (including format-tag
    /// mismatches from older cache layouts).
    Miss,
    /// The tier had an entry but could not produce it (truncated or
    /// corrupt file, I/O failure). Degrades to a miss; counted
    /// separately so `cache.disk_errors` can surface it.
    Error,
}

/// Counters of one persistent tier, sampled by [`CacheTier::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Loads that produced a payload.
    pub hits: u64,
    /// Loads that found nothing (or a stale format tag).
    pub misses: u64,
    /// Loads or stores that failed (corruption, I/O errors).
    pub errors: u64,
    /// Payloads written.
    pub stores: u64,
}

/// A persistence layer consulted below the in-memory tier: loads and
/// stores opaque UTF-8 payloads by content key. Implementations must be
/// safe to share across threads and must never panic on malformed
/// stored data — corruption degrades to [`TierLoad::Error`].
pub trait CacheTier: Send + Sync {
    /// Fetch the payload stored for `key`, if any.
    fn load(&self, key: CacheKey) -> TierLoad;
    /// Persist `payload` for `key`. Failures are recorded in the
    /// tier's error counter, not returned: the memory tier already
    /// holds the value, so a failed store only costs a future recompute.
    fn store(&self, key: CacheKey, payload: &str);
    /// Sample the tier's counters.
    fn stats(&self) -> TierStats;
}

/// The on-disk [`CacheTier`]: shard-per-prefix directories under a
/// root, atomic write-then-rename, versioned header. See the module
/// docs for the layout.
pub struct DiskTier {
    root: PathBuf,
    format_tag: String,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    stores: AtomicU64,
}

impl fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskTier")
            .field("root", &self.root)
            .field("format_tag", &self.format_tag)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DiskTier {
    /// Open (creating if needed) a disk tier rooted at `root`. The
    /// `format_tag` names the payload encoding; entries written under a
    /// different tag read back as misses. The tag must be a single
    /// whitespace-free token.
    pub fn open(root: impl Into<PathBuf>, format_tag: &str) -> std::io::Result<DiskTier> {
        assert!(
            !format_tag.is_empty() && !format_tag.contains(char::is_whitespace),
            "format tag must be one whitespace-free token"
        );
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskTier {
            root,
            format_tag: format_tag.to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// The directory this tier persists into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_dir(&self, key: CacheKey) -> PathBuf {
        self.root
            .join(format!("{:02x}", (key.value() >> 120) as u8))
    }

    fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.shard_dir(key).join(key.to_string())
    }

    fn parse_entry(&self, bytes: &[u8]) -> Result<Option<String>, ()> {
        let newline = bytes.iter().position(|&b| b == b'\n').ok_or(())?;
        let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| ())?;
        let mut fields = header.split(' ');
        if fields.next() != Some(HEADER_MAGIC) {
            return Err(());
        }
        let tag = fields.next().ok_or(())?;
        let len: usize = fields.next().ok_or(())?.parse().map_err(|_| ())?;
        if fields.next().is_some() {
            return Err(());
        }
        let payload = &bytes[newline + 1..];
        if payload.len() != len {
            // Truncated (or padded) relative to its own header.
            return Err(());
        }
        if tag != self.format_tag {
            // A stale format is an honest miss, but only once the entry
            // itself proved well-formed.
            return Ok(None);
        }
        let payload = std::str::from_utf8(payload).map_err(|_| ())?;
        Ok(Some(payload.to_string()))
    }
}

impl CacheTier for DiskTier {
    fn load(&self, key: CacheKey) -> TierLoad {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return TierLoad::Miss;
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return TierLoad::Error;
            }
        };
        match self.parse_entry(&bytes) {
            Ok(Some(payload)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                TierLoad::Hit(payload)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                TierLoad::Miss
            }
            Err(()) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                TierLoad::Error
            }
        }
    }

    fn store(&self, key: CacheKey, payload: &str) {
        let result = (|| -> std::io::Result<()> {
            let dir = self.shard_dir(key);
            fs::create_dir_all(&dir)?;
            let final_path = dir.join(key.to_string());
            // Salted with pid + a process-wide counter so two threads
            // (or two processes) storing the same key never share a
            // tempfile.
            static TMP_SALT: AtomicU64 = AtomicU64::new(0);
            let tmp_path = dir.join(format!(
                ".{key}.{}.{}.tmp",
                std::process::id(),
                TMP_SALT.fetch_add(1, Ordering::Relaxed)
            ));
            {
                let mut f = fs::File::create(&tmp_path)?;
                writeln!(f, "{HEADER_MAGIC} {} {}", self.format_tag, payload.len())?;
                f.write_all(payload.as_bytes())?;
                f.sync_all()?;
            }
            fs::rename(&tmp_path, &final_path)
        })();
        match result {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

/// How one [`TieredCache`] lookup was served — the hook callers use to
/// tick the matching observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierGrade {
    /// Served from the in-memory tier.
    Memory,
    /// Served by decoding a persisted payload, which was promoted into
    /// the memory tier.
    Disk,
    /// Computed fresh. `disk_error` reports whether the persistent tier
    /// failed (corruption/IO) on the way — distinguishing "cold" from
    /// "degraded".
    Computed {
        /// The persistent tier returned [`TierLoad::Error`] or the
        /// payload failed to decode.
        disk_error: bool,
    },
}

/// Counters of a [`TieredCache`]: the memory tier's stats, the
/// persistent tier's stats (zero when no tier is attached), and the
/// number of disk-to-memory promotions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieredStats {
    /// In-memory tier counters.
    pub memory: CacheStats,
    /// Persistent tier counters.
    pub disk: TierStats,
    /// Disk hits decoded and installed into the memory tier.
    pub promotions: u64,
}

/// Memory-over-disk composition: an in-memory [`ContentCache`] backed
/// by an optional persistent [`CacheTier`]. Lookups check memory first;
/// on a memory miss the persistent tier is consulted, a decodable
/// payload is *promoted* into memory, and only then does the compute
/// run (encoding and storing its result through for the next process).
pub struct TieredCache<V> {
    memory: ContentCache<V>,
    disk: Option<Arc<dyn CacheTier>>,
    promotions: AtomicU64,
}

impl<V> fmt::Debug for TieredCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TieredCache")
            .field("stats", &self.stats())
            .field("has_disk", &self.disk.is_some())
            .finish()
    }
}

impl<V> TieredCache<V> {
    /// A memory-only tiered cache (no persistence).
    pub fn memory_only(memory: ContentCache<V>) -> TieredCache<V> {
        TieredCache {
            memory,
            disk: None,
            promotions: AtomicU64::new(0),
        }
    }

    /// Memory over a persistent tier.
    pub fn over(memory: ContentCache<V>, disk: Arc<dyn CacheTier>) -> TieredCache<V> {
        TieredCache {
            memory,
            disk: Some(disk),
            promotions: AtomicU64::new(0),
        }
    }

    /// Whether a persistent tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Look up `key`, trying memory, then the persistent tier (via
    /// `decode`), then `compute` (whose result is persisted via
    /// `encode`). Returns the value, how the lookup was served, and how
    /// many memory entries this call's installation evicted.
    ///
    /// The encoded payload's byte length is charged to the memory
    /// tier's byte budget as the entry's weight, for promoted and
    /// computed entries alike.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        decode: impl FnOnce(&str) -> Option<V>,
        encode: impl FnOnce(&V) -> String,
        compute: impl FnOnce() -> V,
    ) -> (Arc<V>, TierGrade, u64) {
        let mut grade = TierGrade::Memory;
        let (value, _missed, evicted) = self.memory.get_or_compute_weighed(key, || {
            let mut disk_error = false;
            if let Some(disk) = &self.disk {
                match disk.load(key) {
                    TierLoad::Hit(payload) => match decode(&payload) {
                        Some(v) => {
                            self.promotions.fetch_add(1, Ordering::Relaxed);
                            grade = TierGrade::Disk;
                            return (v, payload.len());
                        }
                        // A payload that parses its header but not its
                        // body is corruption the header check couldn't
                        // see; degrade to a recompute.
                        None => disk_error = true,
                    },
                    TierLoad::Miss => {}
                    TierLoad::Error => disk_error = true,
                }
            }
            grade = TierGrade::Computed { disk_error };
            let v = compute();
            let payload = encode(&v);
            if let Some(disk) = &self.disk {
                disk.store(key, &payload);
            }
            (v, payload.len())
        });
        (value, grade, evicted)
    }

    /// Sample all counters.
    pub fn stats(&self) -> TieredStats {
        TieredStats {
            memory: self.memory.stats(),
            disk: self.disk.as_ref().map(|d| d.stats()).unwrap_or_default(),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clasp-tier-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trip_and_shard_layout() {
        let root = tmpdir("roundtrip");
        let tier = DiskTier::open(&root, "t1").unwrap();
        let key = CacheKey::of(&["case"]);
        assert_eq!(tier.load(key), TierLoad::Miss);
        tier.store(key, "payload line\nsecond line");
        assert_eq!(
            tier.load(key),
            TierLoad::Hit("payload line\nsecond line".to_string())
        );
        let shard = root.join(format!("{:02x}", (key.value() >> 120) as u8));
        assert!(shard.join(key.to_string()).is_file());
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_entry_degrades_to_error_not_panic() {
        let root = tmpdir("trunc");
        let tier = DiskTier::open(&root, "t1").unwrap();
        let key = CacheKey::of(&["case"]);
        tier.store(key, "0123456789");
        // Chop the file mid-payload: header says 10 bytes, file has 4.
        let path = root
            .join(format!("{:02x}", (key.value() >> 120) as u8))
            .join(key.to_string());
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 6]).unwrap();
        assert_eq!(tier.load(key), TierLoad::Error);
        assert_eq!(tier.stats().errors, 1);
        // Garbage header is an error too.
        fs::write(&path, b"not a cache file at all").unwrap();
        assert_eq!(tier.load(key), TierLoad::Error);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn format_tag_mismatch_is_a_miss() {
        let root = tmpdir("tag");
        let old = DiskTier::open(&root, "old-format").unwrap();
        let key = CacheKey::of(&["case"]);
        old.store(key, "payload");
        let new = DiskTier::open(&root, "new-format").unwrap();
        assert_eq!(new.load(key), TierLoad::Miss);
        let stats = new.stats();
        assert_eq!((stats.misses, stats.errors), (1, 0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_promotes_from_disk_then_serves_memory() {
        let root = tmpdir("promote");
        let disk: Arc<dyn CacheTier> = Arc::new(DiskTier::open(&root, "t1").unwrap());
        let key = CacheKey::of(&["x"]);

        // First process: computes and persists.
        let first: TieredCache<u64> = TieredCache::over(ContentCache::new(), Arc::clone(&disk));
        let (v, grade, _) = first.get_or_compute(key, |s| s.parse().ok(), |v| v.to_string(), || 42);
        assert_eq!(*v, 42);
        assert_eq!(grade, TierGrade::Computed { disk_error: false });

        // "Restart": fresh memory, same directory — disk hit, promoted.
        let second: TieredCache<u64> = TieredCache::over(
            ContentCache::new(),
            Arc::new(DiskTier::open(&root, "t1").unwrap()),
        );
        let (v, grade, _) = second.get_or_compute(
            key,
            |s| s.parse().ok(),
            |v| v.to_string(),
            || unreachable!("must be served from disk"),
        );
        assert_eq!(*v, 42);
        assert_eq!(grade, TierGrade::Disk);
        assert_eq!(second.stats().promotions, 1);

        // Third lookup in the same process: pure memory.
        let (_, grade, _) = second.get_or_compute(
            key,
            |s| s.parse().ok(),
            |v| v.to_string(),
            || unreachable!(),
        );
        assert_eq!(grade, TierGrade::Memory);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn undecodable_payload_recomputes_with_disk_error() {
        let root = tmpdir("undecodable");
        let disk = Arc::new(DiskTier::open(&root, "t1").unwrap());
        let key = CacheKey::of(&["x"]);
        disk.store(key, "not a number");
        let cache: TieredCache<u64> =
            TieredCache::over(ContentCache::new(), Arc::clone(&disk) as Arc<dyn CacheTier>);
        let (v, grade, _) = cache.get_or_compute(key, |s| s.parse().ok(), |v| v.to_string(), || 7);
        assert_eq!(*v, 7);
        assert_eq!(grade, TierGrade::Computed { disk_error: true });
        // The recompute stored a good payload over the bad one.
        assert_eq!(disk.load(key), TierLoad::Hit("7".to_string()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn two_writers_share_a_directory_without_corruption() {
        let root = tmpdir("shared");
        let a = DiskTier::open(&root, "t1").unwrap();
        let b = DiskTier::open(&root, "t1").unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50u64 {
                    a.store(CacheKey::of(&[&i.to_string()]), &format!("v{i}"));
                }
            });
            s.spawn(|| {
                for i in 0..50u64 {
                    b.store(CacheKey::of(&[&i.to_string()]), &format!("v{i}"));
                }
            });
        });
        for i in 0..50u64 {
            assert_eq!(
                a.load(CacheKey::of(&[&i.to_string()])),
                TierLoad::Hit(format!("v{i}"))
            );
        }
        assert_eq!(a.stats().errors + b.stats().errors, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
